//! Convenience constructors for the three switch engines.

use svt_arch::ArchId;
use svt_hv::{BaselineReflector, Level, Machine, MachineConfig, Reflector};

use crate::hw::HwSvtReflector;
use crate::sw::SwSvtReflector;

/// Which mechanics run the nested stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchMode {
    /// Prevailing single-hardware-thread virtualization.
    Baseline,
    /// The paper's hardware proposal (§§ 3–4).
    HwSvt,
    /// The software-only prototype on existing SMT (§ 5.2).
    SwSvt,
}

impl SwitchMode {
    /// All modes, in the order the paper's figures present them.
    pub const ALL: [SwitchMode; 3] = [SwitchMode::Baseline, SwitchMode::SwSvt, SwitchMode::HwSvt];

    /// Display label used by the benches.
    pub fn label(self) -> &'static str {
        match self {
            SwitchMode::Baseline => "Baseline",
            SwitchMode::SwSvt => "SW SVt",
            SwitchMode::HwSvt => "HW SVt",
        }
    }

    /// Builds the reflector for this mode.
    pub fn reflector(self) -> Box<dyn Reflector> {
        match self {
            SwitchMode::Baseline => Box::new(BaselineReflector::new()),
            SwitchMode::HwSvt => Box::new(HwSvtReflector::new()),
            SwitchMode::SwSvt => Box::new(SwSvtReflector::new()),
        }
    }
}

impl std::fmt::Display for SwitchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A nested (L2) machine with the paper's default configuration and the
/// given switch engine.
pub fn nested_machine(mode: SwitchMode) -> Machine {
    machine_with(mode, MachineConfig::at_level(Level::L2))
}

/// [`nested_machine`] on an explicit ISA backend, with the backend's
/// calibrated cost model and shadowing capability.
/// `nested_machine_on(mode, ArchId::X86)` is identical to
/// `nested_machine(mode)`.
pub fn nested_machine_on(mode: SwitchMode, arch: ArchId) -> Machine {
    machine_with(mode, MachineConfig::at_level_on(Level::L2, arch))
}

/// A machine with an explicit configuration and the given switch engine.
pub fn machine_with(mode: SwitchMode, cfg: MachineConfig) -> Machine {
    Machine::with_reflector(cfg, mode.reflector())
}

/// A nested (L2) machine with `n_vcpus` virtual CPUs, each running its own
/// instance of the mode's switch engine on its own physical core (thread 0
/// runs the vCPU, thread 1 hosts its SVt contexts).
///
/// With `n_vcpus == 1` this is exactly [`nested_machine`]: the scheduler
/// never switches and the run is bit-identical to the single-vCPU machine.
///
/// # Panics
///
/// Panics if `n_vcpus` is zero or exceeds the machine's physical cores.
pub fn smp_machine(mode: SwitchMode, n_vcpus: usize) -> Machine {
    smp_machine_with(mode, MachineConfig::at_level(Level::L2), n_vcpus)
}

/// [`smp_machine`] on an explicit ISA backend.
pub fn smp_machine_on(mode: SwitchMode, arch: ArchId, n_vcpus: usize) -> Machine {
    smp_machine_with(mode, MachineConfig::at_level_on(Level::L2, arch), n_vcpus)
}

/// [`smp_machine`] with an explicit configuration.
pub fn smp_machine_with(mode: SwitchMode, cfg: MachineConfig, n_vcpus: usize) -> Machine {
    assert!(n_vcpus >= 1, "a machine needs at least one vCPU");
    let mut m = Machine::with_reflector(cfg, mode.reflector());
    for _ in 1..n_vcpus {
        m.add_vcpu(mode.reflector());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(SwitchMode::Baseline.label(), "Baseline");
        assert_eq!(SwitchMode::SwSvt.label(), "SW SVt");
        assert_eq!(SwitchMode::HwSvt.label(), "HW SVt");
        assert_eq!(SwitchMode::ALL.len(), 3);
    }

    #[test]
    fn constructors_produce_named_engines() {
        assert_eq!(nested_machine(SwitchMode::HwSvt).reflector_name(), "hw-svt");
        assert_eq!(nested_machine(SwitchMode::SwSvt).reflector_name(), "sw-svt");
        assert_eq!(
            nested_machine(SwitchMode::Baseline).reflector_name(),
            "baseline"
        );
    }

    #[test]
    fn arch_constructors_pick_backend_defaults() {
        let x86 = nested_machine_on(SwitchMode::Baseline, ArchId::X86);
        assert_eq!(x86.arch, ArchId::X86);
        assert!(x86.shadowing);
        let rv = nested_machine_on(SwitchMode::SwSvt, ArchId::Riscv);
        assert_eq!(rv.arch, ArchId::Riscv);
        assert!(!rv.shadowing, "CVA6 has no VMCS-shadowing analogue");
        assert_eq!(rv.cost, svt_sim::CostModel::cva6());
        // Every engine boots the nested stack on the riscv backend.
        for mode in SwitchMode::ALL {
            let m = nested_machine_on(mode, ArchId::Riscv);
            assert_eq!(m.level(), Level::L2);
        }
    }
}

//! Graceful degradation for the SW-SVt protocol.
//!
//! The hardened reflector never trades liveness for speed: when the ring
//! protocol keeps failing (lost doorbells, dropped or corrupted
//! commands), it *falls back per-trap* to the classic exit/resume
//! world-switch path — slower, but immune to channel faults — and keeps
//! probing the ring so a healed channel is re-promoted. The policy lives
//! in this small explicit state machine:
//!
//! ```text
//!             first failed attempt                K consecutive failures
//!  Healthy ─────────────────────▶ Degraded ─────────────────────▶ FallenBack
//!     ▲                             │  ▲                              │
//!     │  heal_window clean traps    │  │        successful probe      │
//!     └─────────────────────────────┘  └──────────────────────────────┘
//!                                         (every probe_every-th trap
//!                                          retries the ring)
//! ```
//!
//! Transitions are reported to the caller so every one of them lands in
//! the svt-obs metrics registry and on the causal graph.

/// Health of the SW-SVt channel, as judged by the degradation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvtHealth {
    /// The ring protocol is working; use it for every trap.
    Healthy,
    /// Recent failures seen; still on the ring, watching for a streak.
    Degraded,
    /// The ring is considered broken; traps take the classic world-switch
    /// path, with periodic ring probes.
    FallenBack,
}

impl SvtHealth {
    /// Stable snake_case name (metric dimension).
    pub fn name(self) -> &'static str {
        match self {
            SvtHealth::Healthy => "healthy",
            SvtHealth::Degraded => "degraded",
            SvtHealth::FallenBack => "fallen_back",
        }
    }

    /// Stable wire code for `svt_sim::snapshot`.
    pub fn snap_code(self) -> u8 {
        match self {
            SvtHealth::Healthy => 0,
            SvtHealth::Degraded => 1,
            SvtHealth::FallenBack => 2,
        }
    }

    /// Inverse of [`SvtHealth::snap_code`]; `None` on an unknown code.
    pub fn from_snap_code(code: u8) -> Option<SvtHealth> {
        match code {
            0 => Some(SvtHealth::Healthy),
            1 => Some(SvtHealth::Degraded),
            2 => Some(SvtHealth::FallenBack),
            _ => None,
        }
    }
}

/// A state change the policy just made, for observability.
pub type Transition = (SvtHealth, SvtHealth);

/// Stable label of a transition (metric dimension). Only the four legal
/// edges of the diagram exist.
pub fn transition_label(t: Transition) -> &'static str {
    match t {
        (SvtHealth::Healthy, SvtHealth::Degraded) => "healthy->degraded",
        (SvtHealth::Degraded, SvtHealth::FallenBack) => "degraded->fallen_back",
        (SvtHealth::FallenBack, SvtHealth::Degraded) => "fallen_back->degraded",
        (SvtHealth::Degraded, SvtHealth::Healthy) => "degraded->healthy",
        _ => "invalid",
    }
}

/// The degradation policy: counts consecutive failures and clean traps
/// and decides, per trap, whether the ring or the fallback path runs.
#[derive(Debug, Clone)]
pub struct DegradeFsm {
    state: SvtHealth,
    /// Consecutive failed channel attempts (reset by any clean trap).
    consec_failures: u32,
    /// Consecutive clean ring traps while `Degraded`.
    clean_streak: u32,
    /// Fallback traps since the last ring probe.
    since_probe: u32,
    /// Failures (K) that demote `Degraded` → `FallenBack`.
    pub fallback_after: u32,
    /// Clean ring traps that promote `Degraded` → `Healthy`.
    pub heal_window: u32,
    /// In `FallenBack`, probe the ring every this many traps.
    pub probe_every: u32,
    /// Total traps served through the fallback path.
    pub fallback_traps: u64,
    /// Total transitions taken.
    pub transitions: u64,
}

impl Default for DegradeFsm {
    fn default() -> Self {
        DegradeFsm {
            state: SvtHealth::Healthy,
            consec_failures: 0,
            clean_streak: 0,
            since_probe: 0,
            fallback_after: 4,
            heal_window: 8,
            probe_every: 8,
            fallback_traps: 0,
            transitions: 0,
        }
    }
}

impl DegradeFsm {
    /// A policy with the default K = 4, heal window 8, probe period 8.
    pub fn new() -> Self {
        DegradeFsm::default()
    }

    /// Current health.
    pub fn state(&self) -> SvtHealth {
        self.state
    }

    /// Consecutive failed attempts so far.
    pub fn consecutive_failures(&self) -> u32 {
        self.consec_failures
    }

    fn go(&mut self, to: SvtHealth) -> Option<Transition> {
        let from = self.state;
        if from == to {
            return None;
        }
        self.state = to;
        self.transitions += 1;
        Some((from, to))
    }

    /// Decides the path for the next trap: `true` = ring, `false` =
    /// fallback world switch. In `FallenBack`, every `probe_every`-th
    /// trap is a ring probe.
    pub fn use_ring(&mut self) -> bool {
        if self.state != SvtHealth::FallenBack {
            return true;
        }
        self.since_probe += 1;
        if self.since_probe >= self.probe_every {
            self.since_probe = 0;
            true
        } else {
            false
        }
    }

    /// One channel attempt failed (timeout, corrupt, stale-exhausted…).
    /// Returns the transition taken, if any.
    pub fn on_failure(&mut self) -> Option<Transition> {
        self.clean_streak = 0;
        self.consec_failures += 1;
        match self.state {
            SvtHealth::Healthy => self.go(SvtHealth::Degraded),
            SvtHealth::Degraded if self.consec_failures >= self.fallback_after => {
                self.go(SvtHealth::FallenBack)
            }
            _ => None,
        }
    }

    /// One ring trap completed cleanly (both legs, no retries needed).
    /// Returns the transition taken, if any.
    pub fn on_clean(&mut self) -> Option<Transition> {
        self.consec_failures = 0;
        match self.state {
            SvtHealth::Healthy => None,
            SvtHealth::Degraded => {
                self.clean_streak += 1;
                if self.clean_streak >= self.heal_window {
                    self.clean_streak = 0;
                    self.go(SvtHealth::Healthy)
                } else {
                    None
                }
            }
            // A successful probe: the channel works again.
            SvtHealth::FallenBack => {
                self.clean_streak = 0;
                self.go(SvtHealth::Degraded)
            }
        }
    }

    /// One trap served through the fallback path.
    pub fn note_fallback_trap(&mut self) {
        self.fallback_traps += 1;
    }

    /// Serializes the policy mid-stream for `svt_sim::snapshot`: a
    /// restored FSM continues the exact failure/heal/probe cadence.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.u8(self.state.snap_code());
        w.u32(self.consec_failures);
        w.u32(self.clean_streak);
        w.u32(self.since_probe);
        w.u32(self.fallback_after);
        w.u32(self.heal_window);
        w.u32(self.probe_every);
        w.u64(self.fallback_traps);
        w.u64(self.transitions);
    }

    /// Restores state written by [`DegradeFsm::snap_save`].
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation or an unknown health code.
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        let code = r.u8()?;
        self.state = SvtHealth::from_snap_code(code).ok_or(svt_sim::SnapError::BadValue {
            what: "SVt health code",
            got: u64::from(code),
        })?;
        self.consec_failures = r.u32()?;
        self.clean_streak = r.u32()?;
        self.since_probe = r.u32()?;
        self.fallback_after = r.u32()?;
        self.heal_window = r.u32()?;
        self.probe_every = r.u32()?;
        self.fallback_traps = r.u64()?;
        self.transitions = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_consecutive_failures_reach_fallback_exactly_once() {
        let mut fsm = DegradeFsm::new();
        let mut taken = Vec::new();
        for _ in 0..fsm.fallback_after + 3 {
            if let Some(t) = fsm.on_failure() {
                taken.push(transition_label(t));
            }
        }
        assert_eq!(taken, ["healthy->degraded", "degraded->fallen_back"]);
        assert_eq!(fsm.state(), SvtHealth::FallenBack);
    }

    #[test]
    fn clean_trap_resets_the_failure_streak() {
        let mut fsm = DegradeFsm::new();
        for _ in 0..fsm.fallback_after - 1 {
            fsm.on_failure();
        }
        fsm.on_clean();
        assert_eq!(fsm.consecutive_failures(), 0);
        // The streak restarts: K-1 more failures do not fall back.
        for _ in 0..fsm.fallback_after - 1 {
            fsm.on_failure();
        }
        assert_eq!(fsm.state(), SvtHealth::Degraded);
    }

    #[test]
    fn healthy_window_repromotes() {
        let mut fsm = DegradeFsm::new();
        fsm.on_failure();
        assert_eq!(fsm.state(), SvtHealth::Degraded);
        let mut promoted = None;
        for _ in 0..fsm.heal_window {
            promoted = fsm.on_clean().or(promoted);
        }
        assert_eq!(promoted, Some((SvtHealth::Degraded, SvtHealth::Healthy)));
        assert_eq!(fsm.state(), SvtHealth::Healthy);
    }

    #[test]
    fn fallen_back_probes_periodically_and_recovers_via_degraded() {
        let mut fsm = DegradeFsm::new();
        for _ in 0..fsm.fallback_after {
            fsm.on_failure();
        }
        assert_eq!(fsm.state(), SvtHealth::FallenBack);
        // probe_every - 1 fallback traps, then one probe.
        let mut rings = 0;
        for _ in 0..fsm.probe_every {
            if fsm.use_ring() {
                rings += 1;
            } else {
                fsm.note_fallback_trap();
            }
        }
        assert_eq!(rings, 1);
        assert_eq!(fsm.fallback_traps, u64::from(fsm.probe_every) - 1);
        // The probe succeeds: back to Degraded, then heal to Healthy.
        assert_eq!(
            fsm.on_clean(),
            Some((SvtHealth::FallenBack, SvtHealth::Degraded))
        );
        assert!(fsm.use_ring(), "Degraded serves traps on the ring");
    }

    #[test]
    fn transition_labels_cover_the_diagram() {
        use SvtHealth::*;
        assert_eq!(transition_label((Healthy, Degraded)), "healthy->degraded");
        assert_eq!(
            transition_label((Degraded, FallenBack)),
            "degraded->fallen_back"
        );
        assert_eq!(
            transition_label((FallenBack, Degraded)),
            "fallen_back->degraded"
        );
        assert_eq!(transition_label((Degraded, Healthy)), "degraded->healthy");
    }
}

//! SVt: SMT-based acceleration of nested virtualization.
//!
//! The paper's contribution, on top of the `svt-hv` substrate:
//!
//! * [`HwSvtReflector`] — the hardware/software co-design (§§ 3–4): one
//!   hardware context per virtualization level, VM traps as thread
//!   stall/resume events, and `ctxtld`/`ctxtst` cross-context register
//!   access through the shared physical register file;
//! * [`SwSvtReflector`] — the software-only prototype (§ 5.2): L1's trap
//!   handling on an SVt-thread pinned to the SMT sibling, shared-memory
//!   command rings, `monitor`/`mwait` waiting, and the `SVT_BLOCKED`
//!   interrupt-deadlock avoidance protocol (§ 5.3);
//! * [`SwitchMode`]/[`nested_machine`] — one-line construction of the
//!   three machines the paper's figures compare.
//!
//! # Examples
//!
//! ```
//! use svt_core::{nested_machine, SwitchMode};
//! use svt_hv::{GuestOp, OpLoop};
//! use svt_sim::SimDuration;
//!
//! // Reproduce Fig. 6: one cpuid under each engine.
//! let mut times = Vec::new();
//! for mode in SwitchMode::ALL {
//!     let mut m = nested_machine(mode);
//!     let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
//!     let t0 = m.clock.now();
//!     m.run(&mut prog)?;
//!     times.push((mode.label(), m.clock.now().since(t0).as_us()));
//! }
//! // Baseline > SW SVt > HW SVt.
//! assert!(times[0].1 > times[1].1 && times[1].1 > times[2].1);
//! # Ok::<(), svt_hv::MachineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bypass;
mod commands;
mod degrade;
mod hw;
mod stack;
mod sw;

pub use bypass::BypassReflector;
pub use commands::{Command, ProtocolError, CMD_VM_RESUME, CMD_VM_TRAP, PAYLOAD_LEN};
pub use degrade::{transition_label, DegradeFsm, SvtHealth};
pub use hw::HwSvtReflector;
pub use stack::{
    machine_with, nested_machine, nested_machine_on, smp_machine, smp_machine_on, smp_machine_with,
    SwitchMode,
};
pub use sw::{SwSvtReflector, WaitMode};

//! Level bypass: the "full hardware nested virtualization" design point.
//!
//! § 3.1 of the paper closes with: "SVt could selectively bypass some
//! virtualization levels when triggering a VM trap to bring performance
//! even closer to systems with full hardware support for nested
//! virtualization". [`BypassReflector`] implements that extension: nested
//! traps that L1 should handle are delivered *directly* to L1's hardware
//! context — no L0 legs, no VMCS transformations, no software injection
//! (the hardware writes the exit information into L1's descriptor). L1's
//! own privileged operations still trap into L0, preserving L0's control.
//!
//! This is the upper bound the paper positions SVt against: SVt trades a
//! little of this performance for far simpler hardware.

use svt_arch::{ExitReason, VmcsField};
use svt_cpu::{CtxId, CtxtLevel, Gpr};
use svt_hv::{Machine, Reflector};
use svt_sim::CostPart;

const CTX_L0: CtxId = CtxId(0);
const CTX_L1: CtxId = CtxId(1);
const CTX_L2: CtxId = CtxId(2);

/// The bypass engine: SVt contexts plus direct L2→L1 trap delivery.
///
/// # Examples
///
/// ```
/// use svt_core::BypassReflector;
/// use svt_hv::{GuestOp, Level, Machine, MachineConfig, OpLoop};
/// use svt_sim::SimDuration;
///
/// let cfg = MachineConfig::at_level(Level::L2);
/// let mut m = Machine::with_reflector(cfg, Box::new(BypassReflector::new()));
/// let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
/// let t0 = m.clock.now();
/// m.run(&mut prog)?;
/// // Faster even than HW SVt (~5.5us): the L0 legs are gone entirely.
/// assert!(m.clock.now().since(t0).as_us() < 4.0);
/// # Ok::<(), svt_hv::MachineError>(())
/// ```
#[derive(Debug, Default)]
pub struct BypassReflector {
    initialized: bool,
}

impl BypassReflector {
    /// Creates the engine.
    pub fn new() -> Self {
        BypassReflector { initialized: false }
    }

    fn ensure_init(&mut self, m: &mut Machine) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        let micro = m.core.micro_mut();
        micro.visor = Some(CTX_L0);
        micro.vm = Some(CTX_L2);
        micro.nested = Some(CTX_L2);
        let gprs = m.vcpu2().gprs;
        m.core.micro_mut().is_vm = false;
        for (r, v) in gprs.iter() {
            m.core
                .ctxtst(CtxtLevel::Guest, r, v)
                .expect("ctx2 configured");
        }
        m.core.switch_to(CTX_L2).expect("ctx2 exists");
        m.core.micro_mut().is_vm = true;
    }

    fn stall_resume(&self, m: &mut Machine, part: CostPart, to: CtxId, is_vm: bool) {
        m.clock.push_part(part);
        let c = m.cost.svt_stall + m.cost.svt_resume;
        m.clock.charge(c);
        m.clock.pop_part(part);
        m.core.switch_to(to).expect("SVt context exists");
        m.core.micro_mut().is_vm = is_vm;
    }
}

impl Reflector for BypassReflector {
    fn name(&self) -> &'static str {
        "bypass"
    }

    fn l2_trap(&mut self, m: &mut Machine) {
        self.ensure_init(m);
        // The trap is delivered straight to L1's context.
        self.stall_resume(m, CostPart::SwitchL2L0, CTX_L1, true);
        m.core.micro_mut().nested = Some(CTX_L2);
        m.hw_exit_autosave();
    }

    fn l2_resume(&mut self, m: &mut Machine) {
        m.hw_entry_load();
        self.stall_resume(m, CostPart::SwitchL2L0, CTX_L2, true);
    }

    fn reflect(&mut self, m: &mut Machine, exit: ExitReason) {
        // Hardware wrote the exit information into L1's descriptor at trap
        // time; nothing reaches L0 on this path.
        let (code, qual) = m.arch.encode(exit);
        m.vmcs12_mut().write(VmcsField::ExitReason, code);
        m.vmcs12_mut().write(VmcsField::ExitQualification, qual);
        self.run_l1(m, exit);
    }

    fn run_l1(&mut self, m: &mut Machine, exit: ExitReason) {
        // Already fetching from L1's context (l2_trap switched there).
        m.clock.push_part(CostPart::L1Handler);
        m.l1_handle_exit(self, exit);
        m.clock.pop_part(CostPart::L1Handler);
    }

    fn l1_exit_roundtrip(&mut self, m: &mut Machine, exit: ExitReason, value: u64) -> u64 {
        // L1's own privileged ops still reach L0 (stall/resume switches).
        let c = (m.cost.svt_stall + m.cost.svt_resume) * 2;
        m.clock.charge(c);
        let from = m.core.current();
        m.core.switch_to(CTX_L0).expect("ctx0 exists");
        m.core.micro_mut().is_vm = false;
        let out = m.l0_handle_l1_exit(exit, value);
        m.core.switch_to(from).expect("context exists");
        m.core.micro_mut().is_vm = true;
        out
    }

    fn elides_lazy_sync(&self) -> bool {
        true
    }

    fn l2_gpr_read(&mut self, m: &mut Machine, r: Gpr) -> u64 {
        let c = m.cost.ctxt_reg_access;
        m.clock.charge(c);
        m.clock.count("ctxtld");
        m.core
            .ctxtld(CtxtLevel::Guest, r)
            .expect("SVt target configured")
    }

    fn l2_gpr_write(&mut self, m: &mut Machine, r: Gpr, v: u64) {
        let c = m.cost.ctxt_reg_access;
        m.clock.charge(c);
        m.clock.count("ctxtst");
        m.core
            .ctxtst(CtxtLevel::Guest, r, v)
            .expect("SVt target configured");
        m.vcpu2_mut().gprs.set(r, v);
    }

    // The lazy-init flag is the engine's only mutable state; the context
    // files ride in the per-vCPU `SmtCore` snapshot.
    fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.bool(self.initialized);
    }

    fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        self.initialized = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_hv::{GuestOp, Level, MachineConfig, OpLoop};
    use svt_sim::SimDuration;

    fn cpuid_us(m: &mut Machine, iters: u64) -> f64 {
        let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
        m.run(&mut warm).unwrap();
        let base = m.clock.snapshot();
        let mut prog = OpLoop::new(GuestOp::Cpuid, iters, 0, SimDuration::ZERO);
        m.run(&mut prog).unwrap();
        m.clock.since_snapshot(&base).busy_time().as_us() / iters as f64
    }

    #[test]
    fn bypass_beats_hw_svt() {
        let mut hw = crate::nested_machine(crate::SwitchMode::HwSvt);
        let mut by = Machine::with_reflector(
            MachineConfig::at_level(Level::L2),
            Box::new(BypassReflector::new()),
        );
        let t_hw = cpuid_us(&mut hw, 50);
        let t_by = cpuid_us(&mut by, 50);
        assert!(t_by < t_hw, "bypass {t_by} vs hw {t_hw}");
        // But it is not free: L1's own traps still reach L0.
        assert!(t_by > 0.5, "bypass {t_by}");
    }

    #[test]
    fn bypass_skips_transforms_entirely() {
        use svt_sim::CostPart;
        let mut m = Machine::with_reflector(
            MachineConfig::at_level(Level::L2),
            Box::new(BypassReflector::new()),
        );
        let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
        m.run(&mut warm).unwrap();
        let base = m.clock.snapshot();
        let mut prog = OpLoop::new(GuestOp::Cpuid, 10, 0, SimDuration::ZERO);
        m.run(&mut prog).unwrap();
        let d = m.clock.since_snapshot(&base);
        assert_eq!(d.part_time(CostPart::Transform), SimDuration::ZERO);
        assert_eq!(d.part_time(CostPart::L0Handler), SimDuration::ZERO);
        // L1 still handled every exit.
        assert!(d.part_time(CostPart::L1Handler).as_ns() > 0.0);
    }

    #[test]
    fn l1_exit_info_arrives_without_l0() {
        let mut m = Machine::with_reflector(
            MachineConfig::at_level(Level::L2),
            Box::new(BypassReflector::new()),
        );
        let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
        m.run(&mut prog).unwrap();
        let (code, _) = ExitReason::Cpuid.encode();
        assert_eq!(m.vmcs12().read(VmcsField::ExitReason), code);
    }
}

//! The HW-SVt switch engine.
//!
//! Implements the paper's hardware proposal (§§ 3–4): each virtualization
//! level lives on its own hardware context of one SMT core (L0 on ctx0,
//! L1 on ctx1, L2 on ctx2); VM traps and resumes become thread stall /
//! resume events; and hypervisors touch their subordinate VM's registers
//! with `ctxtld`/`ctxtst` through the shared physical register file
//! instead of spilling through memory. L0 also *elides its lazily-synced
//! context state*, since that state never leaves the per-context register
//! files.

use svt_arch::{ExitReason, VmcsField};
use svt_cpu::{CtxId, CtxtLevel, Gpr};
use svt_hv::{Machine, Reflector};
use svt_obs::{MetricKey, ObsLevel};
use svt_sim::CostPart;

/// Hardware context assignments (the example of § 4).
const CTX_L0: CtxId = CtxId(0);
const CTX_L1: CtxId = CtxId(1);
const CTX_L2: CtxId = CtxId(2);

/// The hardware SVt engine.
///
/// # Examples
///
/// ```
/// use svt_core::{nested_machine, SwitchMode};
/// use svt_hv::{GuestOp, OpLoop};
/// use svt_sim::SimDuration;
///
/// let mut m = nested_machine(SwitchMode::HwSvt);
/// let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
/// let t0 = m.clock.now();
/// m.run(&mut prog)?;
/// // Far cheaper than the 10.4us baseline.
/// assert!(m.clock.now().since(t0).as_us() < 7.0);
/// # Ok::<(), svt_hv::MachineError>(())
/// ```
#[derive(Debug, Default)]
pub struct HwSvtReflector {
    initialized: bool,
    /// Hardware contexts available for SVt (§ 3.1: "SVt can accelerate
    /// context switches between as many nested VM and hypervisor contexts
    /// as hardware contexts are available in a core. Past that point, the
    /// hypervisor must multiplex some of the virtualization levels on a
    /// single hardware context").
    contexts: u8,
}

impl HwSvtReflector {
    /// Creates the engine; hardware contexts are configured lazily on
    /// first use (once the machine exists).
    pub fn new() -> Self {
        HwSvtReflector::with_contexts(3)
    }

    /// The § 3.1 multiplexing fallback: with only two SVt contexts, L2
    /// keeps its own context (the hot path stays fast) while L0 and L1
    /// multiplex on context 0 with full software context switches.
    ///
    /// # Panics
    ///
    /// Panics unless `contexts` is 2 or 3.
    pub fn with_contexts(contexts: u8) -> Self {
        assert!(
            (2..=3).contains(&contexts),
            "the three-level stack multiplexes onto 2 or 3 contexts"
        );
        HwSvtReflector {
            initialized: false,
            contexts,
        }
    }

    fn full(&self) -> bool {
        self.contexts >= 3
    }

    /// Programs the SVt VMCS fields and µ-registers per the § 4
    /// walkthrough: vmcs01 targets {visor=ctx0, vm=ctx1, nested=ctx2},
    /// vmcs02 targets {visor=ctx0, vm=ctx2}; L2's register state is loaded
    /// into ctx2 once via cross-context stores.
    fn ensure_init(&mut self, m: &mut Machine) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        let l2_ctx = if self.full() { CTX_L2 } else { CtxId(1) };
        // vmcs01: L0 runs L1 in ctx1 (or multiplexed on ctx0); L1 reaches
        // its nested VM through SVt_nested.
        let full = self.full();
        let vmcs01 = m.vmcs01_mut();
        vmcs01.set_svt_ctx(VmcsField::SvtVisor, Some(CTX_L0.0));
        vmcs01.set_svt_ctx(
            VmcsField::SvtVm,
            Some(if full { CTX_L1.0 } else { CTX_L0.0 }),
        );
        vmcs01.set_svt_ctx(VmcsField::SvtNested, Some(l2_ctx.0));
        // vmcs02: L0 runs L2 in its own context; no deeper nesting.
        let vmcs02 = m.vmcs02_mut();
        vmcs02.set_svt_ctx(VmcsField::SvtVisor, Some(CTX_L0.0));
        vmcs02.set_svt_ctx(VmcsField::SvtVm, Some(l2_ctx.0));
        vmcs02.set_svt_ctx(VmcsField::SvtNested, None);
        // VMPTRLD caches the fields into the µ-registers.
        let c = m.cost.svt_vmcs_cache;
        m.clock.charge(c);
        let l2 = if self.full() { CTX_L2 } else { CtxId(1) };
        let micro = m.core.micro_mut();
        micro.visor = Some(CTX_L0);
        micro.vm = Some(l2);
        micro.nested = Some(l2);
        // L0 loads L2's initial register state into ctx2 with ctxtst.
        let gprs = m.vcpu2().gprs;
        let c = m.cost.ctxt_regs(Gpr::COUNT as u32);
        m.clock.charge(c);
        m.core.micro_mut().is_vm = false;
        for (r, v) in gprs.iter() {
            m.core
                .ctxtst(CtxtLevel::Guest, r, v)
                .expect("ctx2 configured");
        }
        // Execution currently sits in L2.
        let l2 = if self.full() { CTX_L2 } else { CtxId(1) };
        m.core.switch_to(l2).expect("L2 context exists");
        m.core.micro_mut().is_vm = true;
    }

    fn l2_ctx(&self) -> CtxId {
        if self.full() {
            CTX_L2
        } else {
            CtxId(1)
        }
    }

    fn stall_resume(&self, m: &mut Machine, part: CostPart, to: CtxId, is_vm: bool) {
        let begin = m.clock.now();
        m.clock.push_part(part);
        let c = m.cost.svt_stall + m.cost.svt_resume;
        m.clock.charge(c);
        m.clock.pop_part(part);
        m.core.switch_to(to).expect("SVt context exists");
        m.core.micro_mut().is_vm = is_vm;
        m.obs.span(
            "svt_stall_resume",
            "switch",
            ObsLevel::Machine,
            begin,
            m.clock.now(),
        );
        m.obs
            .metrics
            .inc(MetricKey::new("svt_stall_resume").reflector("hw-svt"));
    }
}

impl Reflector for HwSvtReflector {
    fn name(&self) -> &'static str {
        "hw-svt"
    }

    fn l2_trap(&mut self, m: &mut Machine) {
        self.ensure_init(m);
        // Stall L2's context, fetch from ctx0 — no context save: L2's
        // state stays live in its hardware context.
        let l2 = self.l2_ctx();
        self.stall_resume(m, CostPart::SwitchL2L0, CTX_L0, false);
        m.core.special_mut(l2).rip = m.vcpu2().rip;
        m.hw_exit_autosave();
    }

    fn l2_resume(&mut self, m: &mut Machine) {
        self.ensure_init(m);
        m.hw_entry_load();
        let l2 = self.l2_ctx();
        m.core.special_mut(l2).rip = m.vcpu2().rip;
        self.stall_resume(m, CostPart::SwitchL2L0, l2, true);
    }

    fn run_l1(&mut self, m: &mut Machine, exit: ExitReason) {
        self.ensure_init(m);
        if self.full() {
            // Resume L1's context (its full state is already there).
            self.stall_resume(m, CostPart::SwitchL0L1, CTX_L1, true);
        } else {
            // Multiplexed: L1 shares ctx0 with L0 and pays the classic
            // software world switch.
            m.clock.push_part(CostPart::SwitchL0L1);
            let c = m.cost.vm_entry_hw + m.cost.gpr_thunk() + m.world_extra(svt_hv::Level::L1);
            m.clock.charge(c);
            m.clock.pop_part(CostPart::SwitchL0L1);
            m.core.micro_mut().is_vm = true;
        }
        // While L1 executes, the µ-registers reflect vmcs01: its "guest"
        // register context is reached through SVt_nested (virtualized ids).
        m.core.micro_mut().nested = Some(self.l2_ctx());
        m.clock.push_part(CostPart::L1Handler);
        m.l1_handle_exit(self, exit);
        m.clock.pop_part(CostPart::L1Handler);
        // L1's VM-resume traps into L0.
        if self.full() {
            self.stall_resume(m, CostPart::SwitchL0L1, CTX_L0, false);
        } else {
            m.clock.push_part(CostPart::SwitchL0L1);
            let c = m.cost.vm_exit_hw + m.cost.gpr_thunk() + m.world_extra(svt_hv::Level::L1);
            m.clock.charge(c);
            m.clock.pop_part(CostPart::SwitchL0L1);
            m.core.micro_mut().is_vm = false;
        }
    }

    fn l1_exit_roundtrip(&mut self, m: &mut Machine, exit: ExitReason, value: u64) -> u64 {
        if self.full() {
            // L1's own privileged op still traps to L0, but the switch is
            // a thread stall/resume pair each way.
            let c = (m.cost.svt_stall + m.cost.svt_resume) * 2;
            m.clock.charge(c);
            let from = m.core.current();
            m.core.switch_to(CTX_L0).expect("ctx0 exists");
            m.core.micro_mut().is_vm = false;
            let out = m.l0_handle_l1_exit(exit, value);
            m.core.switch_to(from).expect("context exists");
            m.core.micro_mut().is_vm = true;
            out
        } else {
            // Multiplexed L0/L1: the full software switch both ways.
            let world = m.world_extra(svt_hv::Level::L1);
            let c = m.cost.vm_exit_hw + m.cost.gpr_thunk() + world;
            m.clock.charge(c);
            m.core.micro_mut().is_vm = false;
            let out = m.l0_handle_l1_exit(exit, value);
            let c = m.cost.vm_entry_hw + m.cost.gpr_thunk() + world;
            m.clock.charge(c);
            m.core.micro_mut().is_vm = true;
            out
        }
    }

    fn elides_lazy_sync(&self) -> bool {
        true
    }

    fn l2_gpr_read(&mut self, m: &mut Machine, r: Gpr) -> u64 {
        let c = m.cost.ctxt_reg_access;
        m.clock.charge(c);
        m.clock.count("ctxtld");
        m.obs
            .metrics
            .inc(MetricKey::new("ctxt_reg_access").reflector("hw-svt"));
        m.core
            .ctxtld(CtxtLevel::Guest, r)
            .expect("SVt target configured")
    }

    fn l2_gpr_write(&mut self, m: &mut Machine, r: Gpr, v: u64) {
        let c = m.cost.ctxt_reg_access;
        m.clock.charge(c);
        m.clock.count("ctxtst");
        m.obs
            .metrics
            .inc(MetricKey::new("ctxt_reg_access").reflector("hw-svt"));
        m.core
            .ctxtst(CtxtLevel::Guest, r, v)
            .expect("SVt target configured");
        // The memory copy mirrors the architectural state for the parts of
        // the machine that report it.
        m.vcpu2_mut().gprs.set(r, v);
    }

    // The engine's only mutable state is the lazy-init flag — the µ-register
    // and context-file state lives in `SmtCore` and rides in the per-vCPU
    // snapshot. The context count is construction config, shape-checked.
    fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.u8(self.contexts);
        w.bool(self.initialized);
    }

    fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        let contexts = r.u8()?;
        if contexts != self.contexts {
            return Err(svt_sim::SnapError::ShapeMismatch {
                what: "HW-SVt context count",
                snapshot: u64::from(contexts),
                live: u64::from(self.contexts),
            });
        }
        self.initialized = r.bool()?;
        Ok(())
    }
}

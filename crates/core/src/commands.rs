//! SW-SVt command encoding.
//!
//! The software prototype sends VM-trap and VM-resume commands over the
//! shared-memory rings (paper Fig. 5). A command carries the encoded exit
//! reason and the general-purpose register file of the trapped vCPU —
//! "the necessary information together with the commands on the shared
//! memory channels" (§ 5.2).

use svt_cpu::{Gpr, GprState};

/// Command: L0 tells L1's SVt-thread an L2 trap needs handling.
pub const CMD_VM_TRAP: u32 = 1;
/// Command: the SVt-thread tells L0 that handling finished; resume L2.
pub const CMD_VM_RESUME: u32 = 2;

/// Encoded size of a command payload in bytes.
pub const PAYLOAD_LEN: usize = 4 + 8 + 8 + 8 * Gpr::COUNT;

/// A trap/resume command with its register payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// [`CMD_VM_TRAP`] or [`CMD_VM_RESUME`].
    pub kind: u32,
    /// Encoded exit-reason code.
    pub code: u64,
    /// Encoded exit qualification.
    pub qual: u64,
    /// The vCPU's general-purpose registers.
    pub gprs: GprState,
}

impl Command {
    /// Serializes to the ring-payload byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PAYLOAD_LEN);
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&self.code.to_le_bytes());
        out.extend_from_slice(&self.qual.to_le_bytes());
        for (_, v) in self.gprs.iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from a ring payload.
    ///
    /// Returns `None` if the payload is malformed.
    pub fn decode(bytes: &[u8]) -> Option<Command> {
        if bytes.len() != PAYLOAD_LEN {
            return None;
        }
        let kind = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let code = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
        let qual = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
        let mut gprs = GprState::default();
        for (i, r) in Gpr::ALL.iter().enumerate() {
            let off = 20 + i * 8;
            gprs.set(*r, u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?));
        }
        Some(Command {
            kind,
            code,
            qual,
            gprs,
        })
    }

    /// Number of 64-byte cache lines the payload dirties in the shared
    /// channel (what the receiving sibling must pull across).
    pub fn cache_lines(&self) -> u64 {
        (PAYLOAD_LEN as u64).div_ceil(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Command {
        let mut gprs = GprState::default();
        for (i, r) in Gpr::ALL.iter().enumerate() {
            gprs.set(*r, 0x1000 + i as u64);
        }
        Command {
            kind: CMD_VM_TRAP,
            code: 10,
            qual: 0,
            gprs,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), PAYLOAD_LEN);
        assert_eq!(Command::decode(&bytes), Some(c));
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = sample().encode();
        assert_eq!(Command::decode(&bytes[..PAYLOAD_LEN - 1]), None);
        assert_eq!(Command::decode(&[]), None);
    }

    #[test]
    fn payload_spans_three_cache_lines() {
        // 148 bytes -> 3 lines: the cost the channel model charges.
        assert_eq!(sample().cache_lines(), 3);
    }
}

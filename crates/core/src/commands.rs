//! SW-SVt command encoding.
//!
//! The software prototype sends VM-trap and VM-resume commands over the
//! shared-memory rings (paper Fig. 5). A command carries the encoded exit
//! reason and the general-purpose register file of the trapped vCPU —
//! "the necessary information together with the commands on the shared
//! memory channels" (§ 5.2) — plus the hardening the chaos campaigns
//! forced on the protocol: a per-sender **sequence number** (so a
//! duplicated command is recognised as stale and discarded) and an
//! **FNV-1a checksum** over the payload (so a corrupted command is
//! rejected and retransmitted instead of silently steering the guest).
//! Both fit inside the payload's existing third cache line, so the
//! fault-free transfer cost is unchanged.

use std::error::Error;
use std::fmt;

use svt_cpu::{Gpr, GprState};

/// Command: L0 tells L1's SVt-thread an L2 trap needs handling.
pub const CMD_VM_TRAP: u32 = 1;
/// Command: the SVt-thread tells L0 that handling finished; resume L2.
pub const CMD_VM_RESUME: u32 = 2;

/// Encoded size of a command payload in bytes:
/// kind (4) + checksum (4) + seq (8) + code (8) + qual (8) + GPR file.
pub const PAYLOAD_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8 * Gpr::COUNT;

/// Why a received command was rejected by the hardened protocol. Every
/// variant is a *runtime* error in release builds — rejection feeds the
/// retransmit / fallback recovery path and is counted in the metrics
/// registry, never an assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The ring slot did not hold a well-formed payload.
    Malformed,
    /// The checksum did not match the payload bytes.
    Corrupt,
    /// The command kind was not the one the protocol state expects.
    BadKind {
        /// Kind received.
        got: u32,
        /// Kind the lockstep protocol expects here.
        want: u32,
    },
    /// The ring was empty where the protocol expects a command.
    Empty,
    /// The ring had no free slot for the command.
    RingFull,
}

impl ProtocolError {
    /// Stable snake_case name (metric dimension).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolError::Malformed => "malformed",
            ProtocolError::Corrupt => "corrupt",
            ProtocolError::BadKind { .. } => "bad_kind",
            ProtocolError::Empty => "empty",
            ProtocolError::RingFull => "ring_full",
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed => write!(f, "malformed command payload"),
            ProtocolError::Corrupt => write!(f, "command checksum mismatch"),
            ProtocolError::BadKind { got, want } => {
                write!(f, "unexpected command kind {got} (want {want})")
            }
            ProtocolError::Empty => write!(f, "ring empty where a command is expected"),
            ProtocolError::RingFull => write!(f, "ring full: command not enqueued"),
        }
    }
}

impl Error for ProtocolError {}

/// A trap/resume command with its register payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// [`CMD_VM_TRAP`] or [`CMD_VM_RESUME`].
    pub kind: u32,
    /// Sender-assigned sequence number (monotonic per ring pair).
    pub seq: u64,
    /// Encoded exit-reason code.
    pub code: u64,
    /// Encoded exit qualification.
    pub qual: u64,
    /// The vCPU's general-purpose registers.
    pub gprs: GprState,
    /// FNV-1a checksum over every other encoded byte.
    pub csum: u32,
}

/// FNV-1a over the encoded payload with the checksum field zeroed.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for (i, &b) in bytes.iter().enumerate() {
        // The checksum field itself (bytes 4..8) does not self-checksum.
        let b = if (4..8).contains(&i) { 0 } else { b };
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Command {
    /// Builds a command with its checksum computed.
    pub fn new(kind: u32, seq: u64, code: u64, qual: u64, gprs: GprState) -> Command {
        let mut cmd = Command {
            kind,
            seq,
            code,
            qual,
            gprs,
            csum: 0,
        };
        cmd.csum = fnv1a(&cmd.encode());
        cmd
    }

    /// Serializes to the ring-payload byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PAYLOAD_LEN);
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&self.csum.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.code.to_le_bytes());
        out.extend_from_slice(&self.qual.to_le_bytes());
        for (_, v) in self.gprs.iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from a ring payload.
    ///
    /// Returns `None` if the payload is malformed. The checksum is
    /// carried through verbatim — callers decide with
    /// [`Command::verify`], so a corrupted command is still inspectable.
    pub fn decode(bytes: &[u8]) -> Option<Command> {
        if bytes.len() != PAYLOAD_LEN {
            return None;
        }
        let kind = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let csum = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        let seq = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let code = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
        let qual = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
        let mut gprs = GprState::default();
        for (i, r) in Gpr::ALL.iter().enumerate() {
            let off = 32 + i * 8;
            gprs.set(*r, u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?));
        }
        Some(Command {
            kind,
            seq,
            code,
            qual,
            gprs,
            csum,
        })
    }

    /// Whether the carried checksum matches the payload bytes.
    pub fn verify(&self) -> bool {
        self.csum == fnv1a(&self.encode())
    }

    /// Number of 64-byte cache lines the payload dirties in the shared
    /// channel (what the receiving sibling must pull across).
    pub fn cache_lines(&self) -> u64 {
        (PAYLOAD_LEN as u64).div_ceil(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Command {
        let mut gprs = GprState::default();
        for (i, r) in Gpr::ALL.iter().enumerate() {
            gprs.set(*r, 0x1000 + i as u64);
        }
        Command::new(CMD_VM_TRAP, 3, 10, 0, gprs)
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), PAYLOAD_LEN);
        let back = Command::decode(&bytes).unwrap();
        assert_eq!(back, c);
        assert!(back.verify());
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = sample().encode();
        assert_eq!(Command::decode(&bytes[..PAYLOAD_LEN - 1]), None);
        assert_eq!(Command::decode(&[]), None);
    }

    #[test]
    fn payload_spans_three_cache_lines() {
        // 160 bytes -> 3 lines: seq + checksum ride in the third line the
        // 148-byte payload already occupied, so the fault-free channel
        // cost is identical to the unhardened protocol's.
        assert_eq!(PAYLOAD_LEN, 160);
        assert_eq!(sample().cache_lines(), 3);
    }

    #[test]
    fn any_single_flipped_byte_fails_verification() {
        let c = sample();
        let clean = c.encode();
        for i in 0..PAYLOAD_LEN {
            let mut bytes = clean.clone();
            bytes[i] ^= 0xa5;
            let got = Command::decode(&bytes).unwrap();
            assert!(!got.verify(), "flip at byte {i} slipped past the checksum");
        }
    }

    #[test]
    fn sequence_numbers_travel_with_the_command() {
        let mut c = sample();
        c = Command::new(c.kind, 0xdead_beef, c.code, c.qual, c.gprs);
        let back = Command::decode(&c.encode()).unwrap();
        assert_eq!(back.seq, 0xdead_beef);
        assert!(back.verify());
    }

    #[test]
    fn protocol_error_names_and_display() {
        let e = ProtocolError::BadKind { got: 9, want: 1 };
        assert_eq!(e.name(), "bad_kind");
        assert!(e.to_string().contains('9'));
        assert_eq!(ProtocolError::Corrupt.name(), "corrupt");
    }
}

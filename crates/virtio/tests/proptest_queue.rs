//! Property tests: virtqueues deliver every chain exactly once, in order,
//! for arbitrary chain shapes and interleavings.

use proptest::prelude::*;
use svt_mem::{GuestMemory, Hpa};
use svt_virtio::Virtqueue;

proptest! {
    #[test]
    fn chains_round_trip_in_order(
        chains in prop::collection::vec(
            prop::collection::vec((0x8000u64..0x20000, 1u32..4096, any::<bool>()), 1..4),
            1..12,
        )
    ) {
        let mut mem = GuestMemory::new(1 << 20);
        let mut driver = Virtqueue::new(Hpa(0x1000), 32);
        driver.init(&mut mem).unwrap();
        let mut device = Virtqueue::new(Hpa(0x1000), 32);

        let mut heads = Vec::new();
        for chain in &chains {
            heads.push(driver.driver_add(&mut mem, chain).unwrap());
        }
        for (chain, head) in chains.iter().zip(&heads) {
            let got = device.device_pop(&mem).unwrap().expect("chain present");
            prop_assert_eq!(got.head, *head);
            prop_assert_eq!(got.descs.len(), chain.len());
            for (d, (addr, len, write)) in got.descs.iter().zip(chain) {
                prop_assert_eq!(d.addr, *addr);
                prop_assert_eq!(d.len, *len);
                prop_assert_eq!(d.flags & svt_virtio::DESC_F_WRITE != 0, *write);
            }
            device.device_push_used(&mut mem, got.head, 7).unwrap();
        }
        prop_assert!(device.device_pop(&mem).unwrap().is_none());
        for head in heads {
            prop_assert_eq!(driver.driver_take_used(&mem).unwrap(), Some((head, 7)));
        }
        prop_assert_eq!(driver.driver_take_used(&mem).unwrap(), None);
    }

    #[test]
    fn interleaved_produce_consume_conserves_descriptors(
        ops in prop::collection::vec(any::<bool>(), 1..300)
    ) {
        let mut mem = GuestMemory::new(1 << 20);
        let mut driver = Virtqueue::new(Hpa(0x1000), 8);
        driver.init(&mut mem).unwrap();
        let mut device = Virtqueue::new(Hpa(0x1000), 8);
        let mut outstanding = 0u16;
        let mut produced = 0u64;
        let mut consumed = 0u64;
        for &push in &ops {
            if push && driver.free_descriptors() > 0 {
                driver.driver_add(&mut mem, &[(0x8000 + produced, 8, false)]).unwrap();
                produced += 1;
                outstanding += 1;
            } else if outstanding > 0 {
                let chain = device.device_pop(&mem).unwrap().expect("outstanding chain");
                prop_assert_eq!(chain.descs[0].addr, 0x8000 + consumed);
                device.device_push_used(&mut mem, chain.head, 0).unwrap();
                prop_assert!(driver.driver_take_used(&mem).unwrap().is_some());
                consumed += 1;
                outstanding -= 1;
            }
        }
        prop_assert_eq!(produced - consumed, outstanding as u64);
    }
}

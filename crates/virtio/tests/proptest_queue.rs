//! Property tests: virtqueues deliver every chain exactly once, in order,
//! for arbitrary chain shapes and interleavings.
//!
//! Randomised inputs are driven by the in-tree deterministic PRNG so the
//! cases are reproducible and the suite has no external dependencies.

use svt_mem::{GuestMemory, Hpa};
use svt_sim::DetRng;
use svt_virtio::Virtqueue;

#[test]
fn chains_round_trip_in_order() {
    let mut rng = DetRng::seed(0x71c0_0001);
    for _ in 0..64 {
        let n_chains = rng.range(1, 12) as usize;
        let chains: Vec<Vec<(u64, u32, bool)>> = (0..n_chains)
            .map(|_| {
                let len = rng.range(1, 4) as usize;
                (0..len)
                    .map(|_| {
                        (
                            rng.range(0x8000, 0x20000),
                            rng.range(1, 4096) as u32,
                            rng.chance(0.5),
                        )
                    })
                    .collect()
            })
            .collect();
        let mut mem = GuestMemory::new(1 << 20);
        let mut driver = Virtqueue::new(Hpa(0x1000), 32);
        driver.init(&mut mem).unwrap();
        let mut device = Virtqueue::new(Hpa(0x1000), 32);

        let mut heads = Vec::new();
        for chain in &chains {
            heads.push(driver.driver_add(&mut mem, chain).unwrap());
        }
        for (chain, head) in chains.iter().zip(&heads) {
            let got = device.device_pop(&mem).unwrap().expect("chain present");
            assert_eq!(got.head, *head);
            assert_eq!(got.descs.len(), chain.len());
            for (d, (addr, len, write)) in got.descs.iter().zip(chain) {
                assert_eq!(d.addr, *addr);
                assert_eq!(d.len, *len);
                assert_eq!(d.flags & svt_virtio::DESC_F_WRITE != 0, *write);
            }
            device.device_push_used(&mut mem, got.head, 7).unwrap();
        }
        assert!(device.device_pop(&mem).unwrap().is_none());
        for head in heads {
            assert_eq!(driver.driver_take_used(&mem).unwrap(), Some((head, 7)));
        }
        assert_eq!(driver.driver_take_used(&mem).unwrap(), None);
    }
}

#[test]
fn interleaved_produce_consume_conserves_descriptors() {
    let mut rng = DetRng::seed(0x71c0_0002);
    for _ in 0..64 {
        let n_ops = rng.range(1, 300) as usize;
        let ops: Vec<bool> = (0..n_ops).map(|_| rng.chance(0.5)).collect();
        let mut mem = GuestMemory::new(1 << 20);
        let mut driver = Virtqueue::new(Hpa(0x1000), 8);
        driver.init(&mut mem).unwrap();
        let mut device = Virtqueue::new(Hpa(0x1000), 8);
        let mut outstanding = 0u16;
        let mut produced = 0u64;
        let mut consumed = 0u64;
        for &push in &ops {
            if push && driver.free_descriptors() > 0 {
                driver
                    .driver_add(&mut mem, &[(0x8000 + produced, 8, false)])
                    .unwrap();
                produced += 1;
                outstanding += 1;
            } else if outstanding > 0 {
                let chain = device.device_pop(&mem).unwrap().expect("outstanding chain");
                assert_eq!(chain.descs[0].addr, 0x8000 + consumed);
                device.device_push_used(&mut mem, chain.head, 0).unwrap();
                assert!(driver.driver_take_used(&mem).unwrap().is_some());
                consumed += 1;
                outstanding -= 1;
            }
        }
        assert_eq!(produced - consumed, outstanding as u64);
    }
}

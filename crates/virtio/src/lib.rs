//! Virtio substrate: virtqueues, virtio-net and virtio-blk.
//!
//! The I/O devices the paper's subsystem and application benchmarks run
//! on ("virtio-net-pci+vhost, virtio disk @ ramfs", Table 4):
//!
//! * [`Virtqueue`] — split queues living byte-for-byte in guest memory;
//! * [`VirtioNet`] — a NIC with a serialized 10 GbE wire and an echo/sink
//!   peer (the netperf counterpart machine);
//! * [`VirtioBlk`] — a block device over a RAM disk with per-sector media
//!   time (the tmpfs-backed image of the paper).
//!
//! Device service times and per-operation privileged-backend-operation
//! counts form the *exit profiles* from which Fig. 7's I/O results are
//! reproduced.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blk;
mod net;
mod queue;

pub use blk::{
    BlkConfig, BlkStats, VirtioBlk, BLK_MMIO_BASE, BLK_T_IN, BLK_T_OUT, REG_BLK_NOTIFY, SECTOR_SIZE,
};
pub use net::{
    NetConfig, NetStats, PeerMode, VirtioNet, NET_MMIO_BASE, REG_RX_NOTIFY, REG_STATUS,
    REG_TX_NOTIFY,
};
pub use queue::{DescChain, Descriptor, QueueError, Virtqueue, DESC_F_NEXT, DESC_F_WRITE};

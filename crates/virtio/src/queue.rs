//! Split virtqueues, byte-for-byte in guest memory.
//!
//! The classic virtio 0.9 layout: a descriptor table, an available ring
//! the driver fills, and a used ring the device fills. Both the driver
//! side (used by the workloads) and the device side (used by the device
//! models) operate on the same bytes in simulated guest RAM — nothing is
//! shortcut through Rust state.

use std::error::Error;
use std::fmt;

use svt_mem::{GuestMemory, Hpa, OutOfRange};

/// Descriptor flag: the chain continues at `next`.
pub const DESC_F_NEXT: u16 = 1;
/// Descriptor flag: device writes into this buffer.
pub const DESC_F_WRITE: u16 = 2;

const DESC_SIZE: u64 = 16;

/// Why a virtqueue operation was refused. Every variant is a *runtime*
/// error: a guest that overruns its own queue gets the request rejected
/// (and can observe it through the inflight counters), never a panic in
/// the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The ring's guest memory is out of range.
    Memory(OutOfRange),
    /// A chain with no buffers was submitted.
    EmptyChain,
    /// The queue has fewer free descriptors than the chain needs.
    Exhausted {
        /// Free descriptors available.
        free: u16,
        /// Descriptors the chain needs.
        need: u16,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Memory(e) => write!(f, "virtqueue memory access: {e}"),
            QueueError::EmptyChain => write!(f, "empty descriptor chain"),
            QueueError::Exhausted { free, need } => {
                write!(
                    f,
                    "virtqueue exhausted: {free} free descriptors, need {need}"
                )
            }
        }
    }
}

impl Error for QueueError {}

impl From<OutOfRange> for QueueError {
    fn from(e: OutOfRange) -> Self {
        QueueError::Memory(e)
    }
}

/// One descriptor as read from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest-physical buffer address.
    pub addr: u64,
    /// Buffer length in bytes.
    pub len: u32,
    /// `DESC_F_*` flags.
    pub flags: u16,
    /// Next descriptor index when `DESC_F_NEXT` is set.
    pub next: u16,
}

/// A descriptor chain popped by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Index of the head descriptor (the used-ring id).
    pub head: u16,
    /// The resolved descriptors, in chain order.
    pub descs: Vec<Descriptor>,
}

impl DescChain {
    /// Total bytes across the chain.
    pub fn total_len(&self) -> u64 {
        self.descs.iter().map(|d| d.len as u64).sum()
    }

    /// Total bytes of device-writable buffers in the chain.
    pub fn writable_len(&self) -> u64 {
        self.descs
            .iter()
            .filter(|d| d.flags & DESC_F_WRITE != 0)
            .map(|d| d.len as u64)
            .sum()
    }
}

/// A split virtqueue: geometry plus cached indices.
///
/// The authoritative ring state lives in guest memory; the struct caches
/// only the device's and driver's private progress counters, as real
/// implementations do.
///
/// # Examples
///
/// ```
/// use svt_virtio::Virtqueue;
/// use svt_mem::{GuestMemory, Hpa};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = GuestMemory::new(1 << 20);
/// let mut q = Virtqueue::new(Hpa(0x1000), 8);
/// q.init(&mut mem)?;
/// let head = q.driver_add(&mut mem, &[(0x8000, 64, false)])?;
/// let chain = q.device_pop(&mut mem)?.expect("chain available");
/// assert_eq!(chain.head, head);
/// q.device_push_used(&mut mem, head, 0)?;
/// assert_eq!(q.driver_take_used(&mut mem)?, Some((head, 0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Virtqueue {
    base: Hpa,
    size: u16,
    /// Driver's private copy of the next free descriptor index (simple
    /// bump allocator over a free list).
    free_head: u16,
    free_count: u16,
    /// Device's last seen avail index.
    last_avail: u16,
    /// Driver's last seen used index.
    last_used: u16,
}

impl Virtqueue {
    /// Describes a queue of `size` descriptors with its table at `base`.
    /// The layout is `desc table | avail ring | used ring`, contiguous.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two in `[2, 32768]`.
    pub fn new(base: Hpa, size: u16) -> Self {
        assert!(size.is_power_of_two() && size >= 2, "bad queue size");
        Virtqueue {
            base,
            size,
            free_head: 0,
            free_count: size,
            last_avail: 0,
            last_used: 0,
        }
    }

    /// Queue size in descriptors.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Total guest-memory footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.used_base() + 4 + self.size as u64 * 8 - self.base.0
    }

    fn desc_addr(&self, i: u16) -> Hpa {
        debug_assert!(i < self.size);
        self.base + i as u64 * DESC_SIZE
    }

    fn avail_base(&self) -> u64 {
        self.base.0 + self.size as u64 * DESC_SIZE
    }

    fn used_base(&self) -> u64 {
        self.avail_base() + 4 + self.size as u64 * 2
    }

    /// Zeroes the ring indices.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory range errors.
    pub fn init(&mut self, mem: &mut GuestMemory) -> Result<(), OutOfRange> {
        mem.write_u16(Hpa(self.avail_base() + 2), 0)?;
        mem.write_u16(Hpa(self.used_base() + 2), 0)?;
        self.free_head = 0;
        self.free_count = self.size;
        self.last_avail = 0;
        self.last_used = 0;
        Ok(())
    }

    fn write_desc(&self, mem: &mut GuestMemory, i: u16, d: Descriptor) -> Result<(), OutOfRange> {
        let a = self.desc_addr(i);
        mem.write_u64(a, d.addr)?;
        mem.write_u32(a + 8, d.len)?;
        mem.write_u16(a + 12, d.flags)?;
        mem.write_u16(a + 14, d.next)?;
        Ok(())
    }

    fn read_desc(&self, mem: &GuestMemory, i: u16) -> Result<Descriptor, OutOfRange> {
        let a = self.desc_addr(i);
        Ok(Descriptor {
            addr: mem.read_u64(a)?,
            len: mem.read_u32(a + 8)?,
            flags: mem.read_u16(a + 12)?,
            next: mem.read_u16(a + 14)?,
        })
    }

    /// Driver: allocates descriptors for the buffers `(addr, len,
    /// device_writes)`, links them, and publishes the chain on the avail
    /// ring. Returns the head index.
    ///
    /// # Errors
    ///
    /// [`QueueError::EmptyChain`] for a zero-buffer chain,
    /// [`QueueError::Exhausted`] when fewer free descriptors remain than
    /// the chain needs, and [`QueueError::Memory`] for guest-memory range
    /// errors. All are runtime errors: an overrunning driver gets the
    /// request refused, not a simulator panic.
    pub fn driver_add(
        &mut self,
        mem: &mut GuestMemory,
        buffers: &[(u64, u32, bool)],
    ) -> Result<u16, QueueError> {
        if buffers.is_empty() {
            return Err(QueueError::EmptyChain);
        }
        if (self.free_count as usize) < buffers.len() {
            return Err(QueueError::Exhausted {
                free: self.free_count,
                need: buffers.len() as u16,
            });
        }
        let head = self.free_head;
        let mut idx = head;
        for (i, &(addr, len, write)) in buffers.iter().enumerate() {
            let last = i + 1 == buffers.len();
            let next = (idx + 1) % self.size;
            let mut flags = 0u16;
            if write {
                flags |= DESC_F_WRITE;
            }
            if !last {
                flags |= DESC_F_NEXT;
            }
            self.write_desc(
                mem,
                idx,
                Descriptor {
                    addr,
                    len,
                    flags,
                    next: if last { 0 } else { next },
                },
            )?;
            idx = next;
        }
        self.free_head = idx;
        self.free_count -= buffers.len() as u16;
        // Publish on the avail ring.
        let avail_idx = mem.read_u16(Hpa(self.avail_base() + 2))?;
        let slot = self.avail_base() + 4 + (avail_idx % self.size) as u64 * 2;
        mem.write_u16(Hpa(slot), head)?;
        mem.write_u16(Hpa(self.avail_base() + 2), avail_idx.wrapping_add(1))?;
        Ok(head)
    }

    /// Device: pops the next available chain, if any.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory range errors.
    pub fn device_pop(&mut self, mem: &GuestMemory) -> Result<Option<DescChain>, OutOfRange> {
        let avail_idx = mem.read_u16(Hpa(self.avail_base() + 2))?;
        if self.last_avail == avail_idx {
            return Ok(None);
        }
        let slot = self.avail_base() + 4 + (self.last_avail % self.size) as u64 * 2;
        let head = mem.read_u16(Hpa(slot))?;
        self.last_avail = self.last_avail.wrapping_add(1);
        let mut descs = Vec::new();
        let mut i = head;
        loop {
            let d = self.read_desc(mem, i % self.size)?;
            let cont = d.flags & DESC_F_NEXT != 0;
            let next = d.next;
            descs.push(d);
            if !cont || descs.len() >= self.size as usize {
                break;
            }
            i = next;
        }
        Ok(Some(DescChain { head, descs }))
    }

    /// Device: returns a chain to the driver through the used ring.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory range errors.
    pub fn device_push_used(
        &mut self,
        mem: &mut GuestMemory,
        head: u16,
        written: u32,
    ) -> Result<(), OutOfRange> {
        let used_idx = mem.read_u16(Hpa(self.used_base() + 2))?;
        let slot = self.used_base() + 4 + (used_idx % self.size) as u64 * 8;
        mem.write_u32(Hpa(slot), head as u32)?;
        mem.write_u32(Hpa(slot + 4), written)?;
        mem.write_u16(Hpa(self.used_base() + 2), used_idx.wrapping_add(1))?;
        Ok(())
    }

    /// Driver: consumes one used entry `(head, written)` if present, and
    /// recycles its descriptors.
    ///
    /// # Errors
    ///
    /// Propagates guest-memory range errors.
    pub fn driver_take_used(
        &mut self,
        mem: &GuestMemory,
    ) -> Result<Option<(u16, u32)>, OutOfRange> {
        let used_idx = mem.read_u16(Hpa(self.used_base() + 2))?;
        if self.last_used == used_idx {
            return Ok(None);
        }
        let slot = self.used_base() + 4 + (self.last_used % self.size) as u64 * 8;
        let head = mem.read_u32(Hpa(slot))? as u16;
        let written = mem.read_u32(Hpa(slot + 4))?;
        self.last_used = self.last_used.wrapping_add(1);
        // Recycle: count descriptors of the chain.
        let mut n = 1u16;
        let mut i = head;
        while mem
            .read_u16(self.desc_addr(i % self.size) + 12)
            .unwrap_or(0)
            & DESC_F_NEXT
            != 0
        {
            i = (i + 1) % self.size;
            n += 1;
            if n >= self.size {
                break;
            }
        }
        self.free_count = (self.free_count + n).min(self.size);
        Ok(Some((head, written)))
    }

    /// Driver-visible count of chains the device has not consumed yet
    /// (approximation using the device's private counter; used by tests).
    pub fn free_descriptors(&self) -> u16 {
        self.free_count
    }

    /// Serializes the private progress counters for `svt_sim::snapshot`.
    /// The authoritative ring bytes live in guest memory and ride in the
    /// RAM pages of the snapshot; only the cached cursors travel here.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.u64(self.base.0);
        w.u16(self.size);
        w.u16(self.free_head);
        w.u16(self.free_count);
        w.u16(self.last_avail);
        w.u16(self.last_used);
    }

    /// Restores cursors written by [`Virtqueue::snap_save`] into a queue
    /// of identical geometry.
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation or a geometry mismatch (different
    /// base address or size — construction-time configuration).
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        let base = r.u64()?;
        let size = r.u16()?;
        if base != self.base.0 || size != self.size {
            return Err(svt_sim::SnapError::ShapeMismatch {
                what: "virtqueue geometry",
                snapshot: base | (u64::from(size) << 48),
                live: self.base.0 | (u64::from(self.size) << 48),
            });
        }
        self.free_head = r.u16()?;
        self.free_count = r.u16()?;
        self.last_avail = r.u16()?;
        self.last_used = r.u16()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GuestMemory, Virtqueue) {
        let mut mem = GuestMemory::new(1 << 20);
        let mut q = Virtqueue::new(Hpa(0x1000), 8);
        q.init(&mut mem).unwrap();
        (mem, q)
    }

    #[test]
    fn add_pop_round_trip() {
        let (mut mem, mut q) = setup();
        let head = q.driver_add(&mut mem, &[(0x8000, 128, false)]).unwrap();
        let chain = q.device_pop(&mem).unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.descs.len(), 1);
        assert_eq!(chain.descs[0].addr, 0x8000);
        assert_eq!(chain.descs[0].len, 128);
        assert_eq!(chain.total_len(), 128);
        assert!(q.device_pop(&mem).unwrap().is_none());
    }

    #[test]
    fn chains_link_multiple_descriptors() {
        let (mut mem, mut q) = setup();
        q.driver_add(
            &mut mem,
            &[(0x8000, 16, false), (0x9000, 512, false), (0xa000, 1, true)],
        )
        .unwrap();
        let chain = q.device_pop(&mem).unwrap().unwrap();
        assert_eq!(chain.descs.len(), 3);
        assert_eq!(chain.total_len(), 529);
        assert_eq!(chain.writable_len(), 1);
        assert_eq!(chain.descs[0].flags & DESC_F_NEXT, DESC_F_NEXT);
        assert_eq!(chain.descs[2].flags & DESC_F_NEXT, 0);
        assert_eq!(chain.descs[2].flags & DESC_F_WRITE, DESC_F_WRITE);
    }

    #[test]
    fn used_ring_round_trip() {
        let (mut mem, mut q) = setup();
        let head = q.driver_add(&mut mem, &[(0x8000, 64, true)]).unwrap();
        let chain = q.device_pop(&mem).unwrap().unwrap();
        q.device_push_used(&mut mem, chain.head, 42).unwrap();
        assert_eq!(q.driver_take_used(&mem).unwrap(), Some((head, 42)));
        assert_eq!(q.driver_take_used(&mem).unwrap(), None);
    }

    #[test]
    fn fifo_across_many_wraps() {
        let (mut mem, mut q) = setup();
        for round in 0u32..50 {
            let head = q
                .driver_add(&mut mem, &[(0x8000 + round as u64, 4, false)])
                .unwrap();
            let chain = q.device_pop(&mem).unwrap().unwrap();
            assert_eq!(chain.descs[0].addr, 0x8000 + round as u64);
            q.device_push_used(&mut mem, chain.head, round).unwrap();
            assert_eq!(q.driver_take_used(&mem).unwrap(), Some((head, round)));
        }
    }

    #[test]
    fn multiple_outstanding_chains_pop_in_order() {
        let (mut mem, mut q) = setup();
        for i in 0..4u64 {
            q.driver_add(&mut mem, &[(0x8000 + i * 0x100, 32, false)])
                .unwrap();
        }
        for i in 0..4u64 {
            let chain = q.device_pop(&mem).unwrap().unwrap();
            assert_eq!(chain.descs[0].addr, 0x8000 + i * 0x100);
        }
        assert!(q.device_pop(&mem).unwrap().is_none());
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        let (mut mem, mut q) = setup();
        for _ in 0..8 {
            q.driver_add(&mut mem, &[(0x8000, 8, false)]).unwrap();
        }
        assert_eq!(
            q.driver_add(&mut mem, &[(0x8000, 8, false)]),
            Err(QueueError::Exhausted { free: 0, need: 1 })
        );
        assert_eq!(q.driver_add(&mut mem, &[]), Err(QueueError::EmptyChain));
    }

    #[test]
    fn cursor_snapshot_round_trips() {
        let (mut mem, mut q) = setup();
        q.driver_add(&mut mem, &[(0x8000, 8, false)]).unwrap();
        q.device_pop(&mem).unwrap().unwrap();
        let mut w = svt_sim::SnapWriter::new();
        q.snap_save(&mut w);
        let buf = w.into_vec();
        let mut fresh = Virtqueue::new(Hpa(0x1000), 8);
        let mut r = svt_sim::SnapReader::new(&buf);
        fresh.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.free_descriptors(), q.free_descriptors());
        // Geometry mismatch is a shape error, not a panic.
        let mut other = Virtqueue::new(Hpa(0x2000), 8);
        let mut r = svt_sim::SnapReader::new(&buf);
        assert!(matches!(
            other.snap_load(&mut r),
            Err(svt_sim::SnapError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn recycle_restores_capacity() {
        let (mut mem, mut q) = setup();
        for _ in 0..8 {
            q.driver_add(&mut mem, &[(0x8000, 8, false)]).unwrap();
        }
        assert_eq!(q.free_descriptors(), 0);
        let chain = q.device_pop(&mem).unwrap().unwrap();
        q.device_push_used(&mut mem, chain.head, 0).unwrap();
        q.driver_take_used(&mem).unwrap().unwrap();
        assert_eq!(q.free_descriptors(), 1);
        q.driver_add(&mut mem, &[(0x8000, 8, false)]).unwrap();
    }

    #[test]
    fn state_is_in_guest_memory() {
        let (mut mem, mut q) = setup();
        q.driver_add(&mut mem, &[(0x1234, 5, false)]).unwrap();
        // A second queue view over the same memory sees the same avail
        // entry (only private counters differ).
        let mut alias = Virtqueue::new(Hpa(0x1000), 8);
        let chain = alias.device_pop(&mem).unwrap().unwrap();
        assert_eq!(chain.descs[0].addr, 0x1234);
    }

    #[test]
    #[should_panic(expected = "bad queue size")]
    fn non_power_of_two_rejected() {
        let _ = Virtqueue::new(Hpa(0), 6);
    }
}

//! virtio-net with a 10 GbE wire model.
//!
//! The device pairs a TX and an RX virtqueue with a serialized-line wire:
//! packets depart in order at line rate after a one-way wire latency, and
//! a configurable peer either echoes them (netperf TCP_RR) or sinks them
//! and returns coalesced ACKs (netperf TCP_STREAM). The backend numbers
//! (service times and how many vhost-style privileged operations each
//! kick/completion performs against the backend's hypervisor) form the
//! exit profile that Fig. 7's network rows are built from.

use svt_sim::FnvHashMap;

use svt_hv::{Completion, DeviceModel, DeviceOutcome};
use svt_mem::{Gpa, GuestMemory, Hpa};
use svt_sim::{SimDuration, SimTime};

use crate::queue::Virtqueue;

/// Default MMIO base of the net device in guest-physical space.
pub const NET_MMIO_BASE: Gpa = Gpa(0x4000_0000);
/// Doorbell register offset: TX queue notify.
pub const REG_TX_NOTIFY: u64 = 0;
/// Doorbell register offset: RX queue notify (buffer replenish).
pub const REG_RX_NOTIFY: u64 = 8;
/// Read-only status/counter register offset.
pub const REG_STATUS: u64 = 16;

/// What sits on the other end of the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerMode {
    /// Echo server: replies with `reply_len` bytes after `think`
    /// (netperf TCP_RR).
    Echo {
        /// Reply payload size in bytes.
        reply_len: u32,
        /// Peer processing time before the reply departs.
        think: SimDuration,
    },
    /// Sink: consumes packets and returns one coalesced ACK per
    /// `ack_coalesce` packets (netperf TCP_STREAM).
    Sink {
        /// Packets acknowledged per ACK interrupt.
        ack_coalesce: u32,
    },
}

/// Device configuration: geometry, wire model and exit profile.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// MMIO window base.
    pub mmio_base: Gpa,
    /// Completion interrupt vector.
    pub irq_vector: u8,
    /// One-way wire + switch latency.
    pub wire_latency: SimDuration,
    /// Line rate in Mbps (10 GbE on the paper's testbed).
    pub line_rate_mbps: u64,
    /// Backend service per doorbell kick.
    pub kick_service: SimDuration,
    /// Backend service per completion.
    pub completion_service: SimDuration,
    /// Privileged backend operations per kick (vhost notify, …).
    pub kick_backend_exits: u32,
    /// Privileged backend operations per completion (IRQ fd, EOI, …).
    pub completion_backend_exits: u32,
    /// Peer behaviour.
    pub peer: PeerMode,
}

impl NetConfig {
    /// An RR-style configuration from calibrated costs.
    pub fn rr(cost: &svt_sim::CostModel, reply_len: u32) -> Self {
        NetConfig {
            mmio_base: NET_MMIO_BASE,
            irq_vector: svt_arch::VECTOR_VIRTIO,
            wire_latency: cost.wire_latency,
            line_rate_mbps: 10_000,
            kick_service: cost.virtio_backend_service,
            completion_service: cost.virtio_backend_service,
            kick_backend_exits: 1,
            completion_backend_exits: 1,
            peer: PeerMode::Echo {
                reply_len,
                think: cost.netstack_per_packet,
            },
        }
    }

    /// A STREAM-style configuration from calibrated costs.
    pub fn stream(cost: &svt_sim::CostModel, ack_coalesce: u32) -> Self {
        NetConfig {
            peer: PeerMode::Sink { ack_coalesce },
            ..NetConfig::rr(cost, 1)
        }
    }
}

#[derive(Debug, Clone)]
enum Pending {
    RxDeliver { reply_len: u32 },
    TxAck { heads: Vec<u16> },
}

/// Device-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Replies/ACK interrupts delivered.
    pub rx_packets: u64,
    /// Replies dropped for lack of posted RX buffers.
    pub rx_dropped: u64,
}

/// The virtio-net device model.
#[derive(Debug)]
pub struct VirtioNet {
    cfg: NetConfig,
    tx: Virtqueue,
    rx: Virtqueue,
    wire_free_at: SimTime,
    next_token: u64,
    pending: FnvHashMap<u64, Pending>,
    ack_backlog: Vec<u16>,
    stats: NetStats,
    kicks: u64,
    irqs: u64,
    /// Guest-memory faults the device absorbed instead of panicking.
    /// Surfaced via `obs_counters` so the watchdog layer can flag a
    /// wedged driver.
    io_errors: u64,
}

impl VirtioNet {
    /// Creates the device over TX/RX queues the driver has initialized.
    pub fn new(cfg: NetConfig, tx: Virtqueue, rx: Virtqueue) -> Self {
        VirtioNet {
            cfg,
            tx,
            rx,
            wire_free_at: SimTime::ZERO,
            next_token: 0,
            pending: FnvHashMap::default(),
            ack_backlog: Vec::new(),
            stats: NetStats::default(),
            kicks: 0,
            irqs: 0,
            io_errors: 0,
        }
    }

    /// Device statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Wire transmission time for `bytes` at the configured line rate.
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        // bits / (Mbps * 1e6) seconds = bits * 1e6 / rate picoseconds... in ns:
        let ns = bytes as f64 * 8.0 * 1000.0 / self.cfg.line_rate_mbps as f64;
        SimDuration::from_ns_f64(ns)
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    fn process_tx_kick(&mut self, mem: &mut GuestMemory, now: SimTime) -> DeviceOutcome {
        let mut out = DeviceOutcome {
            service: self.cfg.kick_service,
            backend_l1_exits: self.cfg.kick_backend_exits,
            schedule: Vec::new(),
        };
        loop {
            let chain = match self.tx.device_pop(mem) {
                Ok(Some(c)) => c,
                Ok(None) => break,
                Err(_) => {
                    // The TX ring is unreachable: stop servicing the
                    // kick; the error counter flags the wedged queue.
                    self.io_errors += 1;
                    break;
                }
            };
            let len = chain.total_len();
            self.stats.tx_packets += 1;
            self.stats.tx_bytes += len;
            let start = now.max(self.wire_free_at);
            let done = start + self.tx_time(len);
            self.wire_free_at = done;
            match self.cfg.peer {
                PeerMode::Echo { reply_len, think } => {
                    // TX buffer reclaimed immediately (no TX interrupt).
                    if self.tx.device_push_used(mem, chain.head, 0).is_err() {
                        self.io_errors += 1;
                    }
                    let reply_at = done
                        + self.cfg.wire_latency
                        + think
                        + self.cfg.wire_latency
                        + self.tx_time(reply_len as u64);
                    let tok = self.token();
                    self.pending.insert(tok, Pending::RxDeliver { reply_len });
                    out.schedule.push((reply_at, tok));
                }
                PeerMode::Sink { ack_coalesce } => {
                    self.ack_backlog.push(chain.head);
                    if self.ack_backlog.len() as u32 >= ack_coalesce {
                        let heads = std::mem::take(&mut self.ack_backlog);
                        let ack_at = done + self.cfg.wire_latency * 2;
                        let tok = self.token();
                        self.pending.insert(tok, Pending::TxAck { heads });
                        out.schedule.push((ack_at, tok));
                    }
                }
            }
        }
        // Delayed ACK: a partial batch left after the kick is flushed after
        // a TCP-delack-style timeout rather than held forever.
        if !self.ack_backlog.is_empty() {
            let heads = std::mem::take(&mut self.ack_backlog);
            let ack_at = self.wire_free_at + self.cfg.wire_latency * 2 + SimDuration::from_us(100);
            let tok = self.token();
            self.pending.insert(tok, Pending::TxAck { heads });
            out.schedule.push((ack_at, tok));
        }
        out
    }
}

impl DeviceModel for VirtioNet {
    fn ranges(&self) -> Vec<(Gpa, u64)> {
        vec![(self.cfg.mmio_base, 0x1000)]
    }

    fn mmio_write(
        &mut self,
        gpa: Gpa,
        _value: u64,
        mem: &mut GuestMemory,
        now: SimTime,
    ) -> DeviceOutcome {
        let off = gpa.0 - self.cfg.mmio_base.0;
        match off {
            REG_TX_NOTIFY => {
                self.kicks += 1;
                self.process_tx_kick(mem, now)
            }
            REG_RX_NOTIFY => {
                self.kicks += 1;
                DeviceOutcome::service(self.cfg.kick_service / 4)
            }
            _ => DeviceOutcome::default(),
        }
    }

    fn mmio_read(
        &mut self,
        gpa: Gpa,
        _mem: &mut GuestMemory,
        _now: SimTime,
    ) -> (u64, DeviceOutcome) {
        let off = gpa.0 - self.cfg.mmio_base.0;
        let v = match off {
            REG_STATUS => self.stats.tx_packets,
            _ => 0,
        };
        (v, DeviceOutcome::default())
    }

    fn complete(&mut self, token: u64, mem: &mut GuestMemory, _now: SimTime) -> Option<Completion> {
        let pending = self.pending.remove(&token)?;
        match pending {
            Pending::RxDeliver { reply_len } => {
                let chain = match self.rx.device_pop(mem) {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        self.stats.rx_dropped += 1;
                        return None;
                    }
                    Err(_) => {
                        // Unreachable RX ring: the reply is dropped, the
                        // error counter flags the wedged queue.
                        self.io_errors += 1;
                        self.stats.rx_dropped += 1;
                        return None;
                    }
                };
                // Write a payload marker into the posted buffer.
                if let Some(d) = chain.descs.first() {
                    let n = (reply_len as usize).min(8).min(d.len as usize);
                    if mem
                        .write(Hpa(d.addr), &0x5654_5654u64.to_le_bytes()[..n])
                        .is_err()
                    {
                        self.io_errors += 1;
                    }
                }
                if self
                    .rx
                    .device_push_used(mem, chain.head, reply_len)
                    .is_err()
                {
                    self.io_errors += 1;
                }
                self.stats.rx_packets += 1;
                self.irqs += 1;
                Some(Completion {
                    vector: self.cfg.irq_vector,
                    service: self.cfg.completion_service,
                    backend_l1_exits: self.cfg.completion_backend_exits,
                    schedule: Vec::new(),
                })
            }
            Pending::TxAck { heads } => {
                for head in heads {
                    if self.tx.device_push_used(mem, head, 0).is_err() {
                        self.io_errors += 1;
                    }
                }
                self.stats.rx_packets += 1;
                self.irqs += 1;
                Some(Completion {
                    vector: self.cfg.irq_vector,
                    service: self.cfg.completion_service,
                    backend_l1_exits: self.cfg.completion_backend_exits,
                    schedule: Vec::new(),
                })
            }
        }
    }

    fn obs_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("net_kicks", self.kicks),
            ("net_irqs", self.irqs),
            ("net_tx_packets", self.stats.tx_packets),
            ("net_rx_packets", self.stats.rx_packets),
            ("net_rx_dropped", self.stats.rx_dropped),
            ("net_inflight", self.pending.len() as u64),
            ("net_io_errors", self.io_errors),
        ]
    }

    // Serializes the device's full mutable state: both queue cursors, the
    // wire horizon, the in-flight table (sorted by token), the delayed-ACK
    // backlog and the statistics. The MMIO base is construction config,
    // shape-checked.
    fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.u64(self.cfg.mmio_base.0);
        self.tx.snap_save(w);
        self.rx.snap_save(w);
        w.u64(self.wire_free_at.as_ps());
        w.u64(self.next_token);
        let mut tokens: Vec<u64> = self.pending.keys().copied().collect();
        tokens.sort_unstable();
        w.usize(tokens.len());
        for t in tokens {
            w.u64(t);
            match &self.pending[&t] {
                Pending::RxDeliver { reply_len } => {
                    w.u8(0);
                    w.u32(*reply_len);
                }
                Pending::TxAck { heads } => {
                    w.u8(1);
                    w.usize(heads.len());
                    for &h in heads {
                        w.u16(h);
                    }
                }
            }
        }
        w.usize(self.ack_backlog.len());
        for &h in &self.ack_backlog {
            w.u16(h);
        }
        w.u64(self.stats.tx_packets);
        w.u64(self.stats.tx_bytes);
        w.u64(self.stats.rx_packets);
        w.u64(self.stats.rx_dropped);
        w.u64(self.kicks);
        w.u64(self.irqs);
        w.u64(self.io_errors);
    }

    fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        let base = r.u64()?;
        if base != self.cfg.mmio_base.0 {
            return Err(svt_sim::SnapError::ShapeMismatch {
                what: "virtio-net MMIO base",
                snapshot: base,
                live: self.cfg.mmio_base.0,
            });
        }
        self.tx.snap_load(r)?;
        self.rx.snap_load(r)?;
        self.wire_free_at = SimTime::from_ps(r.u64()?);
        self.next_token = r.u64()?;
        self.pending.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let token = r.u64()?;
            let pending = match r.u8()? {
                0 => Pending::RxDeliver {
                    reply_len: r.u32()?,
                },
                1 => {
                    let nh = r.usize()?;
                    let mut heads = Vec::with_capacity(nh);
                    for _ in 0..nh {
                        heads.push(r.u16()?);
                    }
                    Pending::TxAck { heads }
                }
                got => {
                    return Err(svt_sim::SnapError::BadValue {
                        what: "virtio-net pending tag",
                        got: u64::from(got),
                    })
                }
            };
            self.pending.insert(token, pending);
        }
        self.ack_backlog.clear();
        let n = r.usize()?;
        for _ in 0..n {
            self.ack_backlog.push(r.u16()?);
        }
        self.stats.tx_packets = r.u64()?;
        self.stats.tx_bytes = r.u64()?;
        self.stats.rx_packets = r.u64()?;
        self.stats.rx_dropped = r.u64()?;
        self.kicks = r.u64()?;
        self.irqs = r.u64()?;
        self.io_errors = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_sim::CostModel;

    fn setup(peer: PeerMode) -> (GuestMemory, VirtioNet, Virtqueue, Virtqueue) {
        let mut mem = GuestMemory::new(1 << 20);
        let mut txd = Virtqueue::new(Hpa(0x1000), 16);
        let mut rxd = Virtqueue::new(Hpa(0x2000), 16);
        txd.init(&mut mem).unwrap();
        rxd.init(&mut mem).unwrap();
        let cost = CostModel::default();
        let mut cfg = NetConfig::rr(&cost, 1);
        cfg.peer = peer;
        // The device views the same rings through its own counters.
        let tx_dev = Virtqueue::new(Hpa(0x1000), 16);
        let rx_dev = Virtqueue::new(Hpa(0x2000), 16);
        let net = VirtioNet::new(cfg, tx_dev, rx_dev);
        (mem, net, txd, rxd)
    }

    #[test]
    fn rr_kick_schedules_reply() {
        let (mut mem, mut net, mut txd, mut rxd) = setup(PeerMode::Echo {
            reply_len: 1,
            think: SimDuration::from_us(4),
        });
        // Driver posts an RX buffer and a 1-byte TX packet, then kicks.
        rxd.driver_add(&mut mem, &[(0x9000, 64, true)]).unwrap();
        let tx_head = txd.driver_add(&mut mem, &[(0x8000, 1, false)]).unwrap();
        let out = net.mmio_write(NET_MMIO_BASE + REG_TX_NOTIFY, 1, &mut mem, SimTime::ZERO);
        assert_eq!(out.backend_l1_exits, 1);
        assert_eq!(out.schedule.len(), 1);
        // TX buffer already reclaimed.
        assert_eq!(txd.driver_take_used(&mem).unwrap(), Some((tx_head, 0)));
        // Reply arrives after ~2x wire latency + think.
        let (reply_at, tok) = out.schedule[0];
        let wire2 = CostModel::default().wire_latency.as_us() * 2.0;
        assert!(
            reply_at.as_us() > wire2 && reply_at.as_us() < wire2 + 6.0,
            "{reply_at}"
        );
        let comp = net.complete(tok, &mut mem, reply_at).unwrap();
        assert_eq!(comp.vector, svt_arch::VECTOR_VIRTIO);
        // The RX used ring now carries the reply.
        assert_eq!(rxd.driver_take_used(&mem).unwrap().map(|(_, l)| l), Some(1));
        assert_eq!(net.stats().rx_packets, 1);
    }

    #[test]
    fn rr_without_rx_buffer_drops() {
        let (mut mem, mut net, mut txd, _rxd) = setup(PeerMode::Echo {
            reply_len: 1,
            think: SimDuration::ZERO,
        });
        txd.driver_add(&mut mem, &[(0x8000, 1, false)]).unwrap();
        let out = net.mmio_write(NET_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        let (at, tok) = out.schedule[0];
        assert!(net.complete(tok, &mut mem, at).is_none());
        assert_eq!(net.stats().rx_dropped, 1);
    }

    #[test]
    fn stream_coalesces_acks() {
        let (mut mem, mut net, mut txd, _rxd) = setup(PeerMode::Sink { ack_coalesce: 4 });
        for i in 0..8u64 {
            txd.driver_add(&mut mem, &[(0x8000 + i * 0x4000, 16_384, false)])
                .unwrap();
        }
        let out = net.mmio_write(NET_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        // 8 packets, coalesce 4 => exactly 2 ACK completions.
        assert_eq!(out.schedule.len(), 2);
        let (at, tok) = out.schedule[0];
        let comp = net.complete(tok, &mut mem, at).unwrap();
        assert_eq!(comp.vector, svt_arch::VECTOR_VIRTIO);
        // Four TX buffers reclaimed by the first ACK.
        let mut reclaimed = 0;
        while txd.driver_take_used(&mem).unwrap().is_some() {
            reclaimed += 1;
        }
        assert_eq!(reclaimed, 4);
    }

    #[test]
    fn wire_serializes_back_to_back_packets() {
        let (mut mem, mut net, mut txd, _rxd) = setup(PeerMode::Sink { ack_coalesce: 1 });
        txd.driver_add(&mut mem, &[(0x8000, 16_384, false)])
            .unwrap();
        txd.driver_add(&mut mem, &[(0xc000, 16_384, false)])
            .unwrap();
        let out = net.mmio_write(NET_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        let t0 = out.schedule[0].0;
        let t1 = out.schedule[1].0;
        // 16KB at 10Gbps is ~13.1us; the second ACK trails by one slot.
        let gap = t1.since(t0);
        assert!((gap.as_us() - 13.1).abs() < 0.2, "gap {gap}");
    }

    #[test]
    fn tx_time_matches_line_rate() {
        let (_, net, _, _) = setup(PeerMode::Sink { ack_coalesce: 1 });
        // 10Gbps: 1 byte = 0.8ns; 16KB ~ 13.1us.
        assert!((net.tx_time(16_384).as_us() - 13.107).abs() < 0.01);
        assert_eq!(net.tx_time(0), SimDuration::ZERO);
    }
}

//! virtio-blk backed by a RAM disk.
//!
//! Requests follow the standard three-part descriptor chain — a 16-byte
//! header (type + sector), the data buffers, and a one-byte status the
//! device writes — and the data genuinely moves between the RAM-disk
//! store and guest buffers. The paper boots its VM images from tmpfs to
//! decouple the evaluation from storage technology; the RAM disk's
//! per-sector media time plays that role here.

use svt_sim::FnvHashMap;

use svt_hv::{Completion, DeviceModel, DeviceOutcome};
use svt_mem::{Gpa, GuestMemory, Hpa};
use svt_sim::{SimDuration, SimTime};

use crate::queue::Virtqueue;

/// Default MMIO base of the block device in guest-physical space.
pub const BLK_MMIO_BASE: Gpa = Gpa(0x4100_0000);
/// Doorbell register offset.
pub const REG_BLK_NOTIFY: u64 = 0;

/// Request type: read.
pub const BLK_T_IN: u32 = 0;
/// Request type: write.
pub const BLK_T_OUT: u32 = 1;
/// Bytes per sector.
pub const SECTOR_SIZE: u64 = 512;

/// Device configuration: media model and exit profile.
#[derive(Debug, Clone)]
pub struct BlkConfig {
    /// MMIO window base.
    pub mmio_base: Gpa,
    /// Completion interrupt vector.
    pub irq_vector: u8,
    /// Backend service per doorbell kick.
    pub kick_service: SimDuration,
    /// Backend service per completion.
    pub completion_service: SimDuration,
    /// Extra completion service for writes (journal/flush on the backing
    /// image — the reason the paper's randwr latency exceeds randrd).
    pub write_extra_service: SimDuration,
    /// Extra privileged backend operations per write completion.
    pub write_extra_exits: u32,
    /// RAM-disk media time per sector.
    pub media_per_sector: SimDuration,
    /// Privileged backend operations per kick.
    pub kick_backend_exits: u32,
    /// Privileged backend operations per completion.
    pub completion_backend_exits: u32,
}

impl BlkConfig {
    /// Configuration from calibrated costs.
    pub fn from_cost(cost: &svt_sim::CostModel) -> Self {
        BlkConfig {
            mmio_base: BLK_MMIO_BASE,
            irq_vector: svt_arch::VECTOR_VIRTIO,
            kick_service: cost.blk_backend_service / 2,
            completion_service: cost.blk_backend_service,
            write_extra_service: cost.blk_write_extra_service,
            write_extra_exits: 6,
            media_per_sector: cost.ramdisk_per_sector,
            kick_backend_exits: 2,
            completion_backend_exits: 2,
        }
    }
}

/// A parsed block request.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlkRequest {
    head: u16,
    write: bool,
    sector: u64,
    data: Vec<(u64, u32)>,
    status_addr: u64,
}

/// Device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlkStats {
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// The virtio-blk device model with its RAM-disk store.
#[derive(Debug)]
pub struct VirtioBlk {
    cfg: BlkConfig,
    queue: Virtqueue,
    disk: FnvHashMap<u64, Box<[u8; SECTOR_SIZE as usize]>>,
    media_free_at: SimTime,
    next_token: u64,
    pending: FnvHashMap<u64, BlkRequest>,
    stats: BlkStats,
    kicks: u64,
    irqs: u64,
    /// Guest-memory faults the device absorbed instead of panicking
    /// (bad buffer addresses in a request). Surfaced via
    /// `obs_counters` so the watchdog layer can flag a wedged driver.
    io_errors: u64,
}

impl VirtioBlk {
    /// Creates the device over a queue the driver has initialized.
    pub fn new(cfg: BlkConfig, queue: Virtqueue) -> Self {
        VirtioBlk {
            cfg,
            queue,
            disk: FnvHashMap::default(),
            media_free_at: SimTime::ZERO,
            next_token: 0,
            pending: FnvHashMap::default(),
            stats: BlkStats::default(),
            kicks: 0,
            irqs: 0,
            io_errors: 0,
        }
    }

    /// Device statistics.
    pub fn stats(&self) -> BlkStats {
        self.stats
    }

    /// Pre-populates a sector of the RAM disk (image loading).
    pub fn load_sector(&mut self, sector: u64, data: &[u8]) {
        let mut s = Box::new([0u8; SECTOR_SIZE as usize]);
        s[..data.len().min(SECTOR_SIZE as usize)]
            .copy_from_slice(&data[..data.len().min(SECTOR_SIZE as usize)]);
        self.disk.insert(sector, s);
    }

    /// Reads a sector of the RAM disk (test/inspection helper).
    pub fn sector(&self, sector: u64) -> [u8; SECTOR_SIZE as usize] {
        self.disk
            .get(&sector)
            .map(|b| **b)
            .unwrap_or([0u8; SECTOR_SIZE as usize])
    }

    fn parse(&self, mem: &GuestMemory, chain: &crate::queue::DescChain) -> Option<BlkRequest> {
        if chain.descs.len() < 3 {
            return None;
        }
        let hdr = chain.descs.first()?;
        let ty = mem.read_u32(Hpa(hdr.addr)).ok()?;
        let sector = mem.read_u64(Hpa(hdr.addr + 8)).ok()?;
        let status = chain.descs.last()?;
        let data = chain.descs[1..chain.descs.len() - 1]
            .iter()
            .map(|d| (d.addr, d.len))
            .collect();
        Some(BlkRequest {
            head: chain.head,
            write: ty == BLK_T_OUT,
            sector,
            data,
            status_addr: status.addr,
        })
    }

    /// Moves the request's data between guest buffers and the RAM disk.
    /// A bad buffer address is a *request* failure, not a simulator
    /// fault: the error propagates so `complete` can report status 1.
    fn execute(
        &mut self,
        req: &BlkRequest,
        mem: &mut GuestMemory,
    ) -> Result<u32, svt_mem::OutOfRange> {
        let mut moved = 0u32;
        let mut sector = req.sector;
        for &(addr, len) in &req.data {
            let mut off = 0u64;
            while off < len as u64 {
                let n = (len as u64 - off).min(SECTOR_SIZE) as usize;
                if req.write {
                    let mut buf = vec![0u8; n];
                    mem.read(Hpa(addr + off), &mut buf)?;
                    let entry = self
                        .disk
                        .entry(sector)
                        .or_insert_with(|| Box::new([0u8; SECTOR_SIZE as usize]));
                    entry[..n].copy_from_slice(&buf);
                } else {
                    let data = self.sector(sector);
                    mem.write(Hpa(addr + off), &data[..n])?;
                }
                sector += 1;
                off += n as u64;
                moved += n as u32;
            }
        }
        Ok(moved)
    }
}

impl DeviceModel for VirtioBlk {
    fn ranges(&self) -> Vec<(Gpa, u64)> {
        vec![(self.cfg.mmio_base, 0x1000)]
    }

    fn mmio_write(
        &mut self,
        gpa: Gpa,
        _value: u64,
        mem: &mut GuestMemory,
        now: SimTime,
    ) -> DeviceOutcome {
        if gpa.0 - self.cfg.mmio_base.0 != REG_BLK_NOTIFY {
            return DeviceOutcome::default();
        }
        self.kicks += 1;
        let mut out = DeviceOutcome {
            service: self.cfg.kick_service,
            backend_l1_exits: self.cfg.kick_backend_exits,
            schedule: Vec::new(),
        };
        loop {
            let chain = match self.queue.device_pop(mem) {
                Ok(Some(c)) => c,
                Ok(None) => break,
                Err(_) => {
                    // The ring itself is unreachable: stop servicing the
                    // kick; the error counter flags the wedged queue.
                    self.io_errors += 1;
                    break;
                }
            };
            let Some(req) = self.parse(mem, &chain) else {
                // Malformed request: fail it immediately with status 1.
                if self.queue.device_push_used(mem, chain.head, 0).is_err() {
                    self.io_errors += 1;
                }
                continue;
            };
            let sectors = req
                .data
                .iter()
                .map(|&(_, l)| (l as u64).div_ceil(SECTOR_SIZE))
                .sum::<u64>()
                .max(1);
            let start = now.max(self.media_free_at);
            let done = start + self.cfg.media_per_sector * sectors;
            self.media_free_at = done;
            self.next_token += 1;
            self.pending.insert(self.next_token, req);
            out.schedule.push((done, self.next_token));
        }
        out
    }

    fn mmio_read(
        &mut self,
        _gpa: Gpa,
        _mem: &mut GuestMemory,
        _now: SimTime,
    ) -> (u64, DeviceOutcome) {
        (
            self.stats.reads + self.stats.writes,
            DeviceOutcome::default(),
        )
    }

    fn complete(&mut self, token: u64, mem: &mut GuestMemory, _now: SimTime) -> Option<Completion> {
        let req = self.pending.remove(&token)?;
        // A bad buffer address fails the request (virtio status 1), it
        // does not crash the device model.
        let (moved, status) = match self.execute(&req, mem) {
            Ok(m) => (m, 0u8),
            Err(_) => {
                self.io_errors += 1;
                (0, 1u8)
            }
        };
        if mem.write(Hpa(req.status_addr), &[status]).is_err() {
            self.io_errors += 1;
        }
        let written = if req.write { 1 } else { moved + 1 };
        if self.queue.device_push_used(mem, req.head, written).is_err() {
            self.io_errors += 1;
        }
        let mut service = self.cfg.completion_service;
        let mut exits = self.cfg.completion_backend_exits;
        if req.write {
            self.stats.writes += 1;
            service += self.cfg.write_extra_service;
            exits += self.cfg.write_extra_exits;
        } else {
            self.stats.reads += 1;
        }
        self.stats.bytes += moved as u64;
        self.irqs += 1;
        Some(Completion {
            vector: self.cfg.irq_vector,
            service,
            backend_l1_exits: exits,
            schedule: Vec::new(),
        })
    }

    fn obs_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("blk_kicks", self.kicks),
            ("blk_irqs", self.irqs),
            ("blk_reads", self.stats.reads),
            ("blk_writes", self.stats.writes),
            ("blk_bytes", self.stats.bytes),
            ("blk_inflight", self.pending.len() as u64),
            ("blk_io_errors", self.io_errors),
        ]
    }

    // Serializes the device's full mutable state: queue cursors, the
    // RAM-disk store (sorted by sector for determinism), the media-time
    // horizon, the in-flight request table (sorted by token) and the
    // statistics. The MMIO base is construction config, shape-checked.
    fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.u64(self.cfg.mmio_base.0);
        self.queue.snap_save(w);
        let mut sectors: Vec<u64> = self.disk.keys().copied().collect();
        sectors.sort_unstable();
        w.usize(sectors.len());
        for s in sectors {
            w.u64(s);
            w.bytes(&self.disk[&s][..]);
        }
        w.u64(self.media_free_at.as_ps());
        w.u64(self.next_token);
        let mut tokens: Vec<u64> = self.pending.keys().copied().collect();
        tokens.sort_unstable();
        w.usize(tokens.len());
        for t in tokens {
            let req = &self.pending[&t];
            w.u64(t);
            w.u16(req.head);
            w.bool(req.write);
            w.u64(req.sector);
            w.usize(req.data.len());
            for &(addr, len) in &req.data {
                w.u64(addr);
                w.u32(len);
            }
            w.u64(req.status_addr);
        }
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.bytes);
        w.u64(self.kicks);
        w.u64(self.irqs);
        w.u64(self.io_errors);
    }

    fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        let base = r.u64()?;
        if base != self.cfg.mmio_base.0 {
            return Err(svt_sim::SnapError::ShapeMismatch {
                what: "virtio-blk MMIO base",
                snapshot: base,
                live: self.cfg.mmio_base.0,
            });
        }
        self.queue.snap_load(r)?;
        self.disk.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let sector = r.u64()?;
            let data = r.bytes()?;
            if data.len() != SECTOR_SIZE as usize {
                return Err(svt_sim::SnapError::BadValue {
                    what: "RAM-disk sector size",
                    got: data.len() as u64,
                });
            }
            let mut s = Box::new([0u8; SECTOR_SIZE as usize]);
            s.copy_from_slice(data);
            self.disk.insert(sector, s);
        }
        self.media_free_at = SimTime::from_ps(r.u64()?);
        self.next_token = r.u64()?;
        self.pending.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let token = r.u64()?;
            let head = r.u16()?;
            let write = r.bool()?;
            let sector = r.u64()?;
            let nbuf = r.usize()?;
            let mut data = Vec::with_capacity(nbuf);
            for _ in 0..nbuf {
                let addr = r.u64()?;
                let len = r.u32()?;
                data.push((addr, len));
            }
            let status_addr = r.u64()?;
            self.pending.insert(
                token,
                BlkRequest {
                    head,
                    write,
                    sector,
                    data,
                    status_addr,
                },
            );
        }
        self.stats.reads = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.bytes = r.u64()?;
        self.kicks = r.u64()?;
        self.irqs = r.u64()?;
        self.io_errors = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_sim::CostModel;

    const HDR: u64 = 0x8000;
    const DATA: u64 = 0x9000;
    const STATUS: u64 = 0xa000;

    fn setup() -> (GuestMemory, VirtioBlk, Virtqueue) {
        let mut mem = GuestMemory::new(1 << 20);
        let mut driver_q = Virtqueue::new(Hpa(0x1000), 16);
        driver_q.init(&mut mem).unwrap();
        let dev_q = Virtqueue::new(Hpa(0x1000), 16);
        let blk = VirtioBlk::new(BlkConfig::from_cost(&CostModel::default()), dev_q);
        (mem, blk, driver_q)
    }

    fn submit(mem: &mut GuestMemory, q: &mut Virtqueue, write: bool, sector: u64, len: u32) -> u16 {
        mem.write_u32(Hpa(HDR), if write { BLK_T_OUT } else { BLK_T_IN })
            .unwrap();
        mem.write_u64(Hpa(HDR + 8), sector).unwrap();
        q.driver_add(
            mem,
            &[(HDR, 16, false), (DATA, len, !write), (STATUS, 1, true)],
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_round_trips_data() {
        let (mut mem, mut blk, mut q) = setup();
        mem.write(Hpa(DATA), b"svt block payload").unwrap();
        let head_w = submit(&mut mem, &mut q, true, 7, 512);
        let out = blk.mmio_write(BLK_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        assert_eq!(out.schedule.len(), 1);
        let (at, tok) = out.schedule[0];
        blk.complete(tok, &mut mem, at).unwrap();
        assert_eq!(q.driver_take_used(&mem).unwrap(), Some((head_w, 1)));
        assert_eq!(&blk.sector(7)[..17], b"svt block payload");

        // Read it back into a different buffer.
        mem.write(Hpa(DATA), &[0u8; 512]).unwrap();
        let head_r = submit(&mut mem, &mut q, false, 7, 512);
        let out = blk.mmio_write(BLK_MMIO_BASE, 1, &mut mem, at);
        let (at2, tok2) = out.schedule[0];
        let comp = blk.complete(tok2, &mut mem, at2).unwrap();
        assert_eq!(comp.vector, svt_arch::VECTOR_VIRTIO);
        assert_eq!(q.driver_take_used(&mem).unwrap(), Some((head_r, 513)));
        let mut buf = [0u8; 17];
        mem.read(Hpa(DATA), &mut buf).unwrap();
        assert_eq!(&buf, b"svt block payload");
        // Status byte written as OK.
        let mut st = [9u8];
        mem.read(Hpa(STATUS), &mut st).unwrap();
        assert_eq!(st[0], 0);
    }

    #[test]
    fn unwritten_sectors_read_zero() {
        let (mut mem, mut blk, mut q) = setup();
        mem.write(Hpa(DATA), &[0xff; 512]).unwrap();
        submit(&mut mem, &mut q, false, 999, 512);
        let out = blk.mmio_write(BLK_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        let (at, tok) = out.schedule[0];
        blk.complete(tok, &mut mem, at).unwrap();
        let mut buf = [1u8; 512];
        mem.read(Hpa(DATA), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 512]);
    }

    #[test]
    fn media_time_scales_with_sectors() {
        let (mut mem, mut blk, mut q) = setup();
        submit(&mut mem, &mut q, true, 0, 4096); // 8 sectors
        let out = blk.mmio_write(BLK_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        let (at, _) = out.schedule[0];
        let per_sector = CostModel::default().ramdisk_per_sector;
        assert_eq!(at, SimTime::ZERO + per_sector * 8);
    }

    #[test]
    fn queue_depth_serializes_on_media() {
        let (mut mem, mut blk, mut q) = setup();
        submit(&mut mem, &mut q, true, 0, 512);
        let head2 = {
            mem.write_u32(Hpa(HDR + 0x100), BLK_T_OUT).unwrap();
            mem.write_u64(Hpa(HDR + 0x108), 1).unwrap();
            q.driver_add(
                &mut mem,
                &[
                    (HDR + 0x100, 16, false),
                    (DATA + 0x400, 512, false),
                    (STATUS + 1, 1, true),
                ],
            )
            .unwrap()
        };
        let out = blk.mmio_write(BLK_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        assert_eq!(out.schedule.len(), 2);
        let gap = out.schedule[1].0.since(out.schedule[0].0);
        assert_eq!(gap, CostModel::default().ramdisk_per_sector);
        let _ = head2;
    }

    #[test]
    fn malformed_chain_failed_immediately() {
        let (mut mem, mut blk, mut q) = setup();
        // A single-descriptor chain is not a valid block request.
        let head = q.driver_add(&mut mem, &[(HDR, 16, false)]).unwrap();
        let out = blk.mmio_write(BLK_MMIO_BASE, 1, &mut mem, SimTime::ZERO);
        assert!(out.schedule.is_empty());
        assert_eq!(q.driver_take_used(&mem).unwrap(), Some((head, 0)));
    }

    #[test]
    fn load_sector_prepopulates_image() {
        let (_, mut blk, _) = setup();
        blk.load_sector(3, b"image");
        assert_eq!(&blk.sector(3)[..5], b"image");
        assert_eq!(blk.sector(4), [0u8; 512]);
    }
}

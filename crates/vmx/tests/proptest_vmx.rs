//! Property tests of the virtualization hardware model.
//!
//! Randomised inputs are driven by the in-tree deterministic PRNG so the
//! cases are reproducible and the suite has no external dependencies.

use svt_mem::Gpa;
use svt_sim::DetRng;
use svt_vmx::{Access, Ept, EptPerms, LocalApic, Vmcs, VmcsField, VmcsRole};

#[test]
fn vmcs_is_a_faithful_field_store() {
    let mut rng = DetRng::seed(0x0f1e_0001);
    for _ in 0..64 {
        let n_writes = rng.range(1, 128) as usize;
        let writes: Vec<(usize, u64)> = (0..n_writes)
            .map(|_| (rng.below(VmcsField::COUNT as u64) as usize, rng.next_u64()))
            .collect();
        let mut vmcs = Vmcs::new(VmcsRole::Shadow, Gpa(0x1000));
        let mut shadow = [0u64; VmcsField::COUNT];
        for (f, v) in &writes {
            vmcs.write(VmcsField::ALL[*f], *v);
            shadow[*f] = *v;
        }
        for (i, f) in VmcsField::ALL.iter().enumerate() {
            assert_eq!(vmcs.read(*f), shadow[i]);
        }
        // Dirty tracking lists each written field exactly once.
        let dirty = vmcs.take_dirty();
        let unique: std::collections::HashSet<_> = writes.iter().map(|(f, _)| *f).collect();
        assert_eq!(dirty.len(), unique.len());
        assert!(vmcs.dirty().is_empty());
    }
}

#[test]
fn ept_translation_preserves_offsets() {
    let mut rng = DetRng::seed(0x0f1e_0002);
    for _ in 0..64 {
        let n_maps = rng.range(1, 64) as usize;
        let maps: Vec<(u64, u64)> = (0..n_maps)
            .map(|_| (rng.below(512), rng.below(512)))
            .collect();
        let offset = rng.below(4096);
        let mut ept = Ept::new();
        for (g, h) in &maps {
            ept.map_page(*g, *h, EptPerms::RWX);
        }
        for (g, _) in &maps {
            let addr = Gpa(g * svt_mem::PAGE_SIZE + offset);
            let out = ept.translate(addr, Access::Read).unwrap();
            assert_eq!(out.0 % svt_mem::PAGE_SIZE, offset);
        }
    }
}

#[test]
fn apic_delivers_every_vector_once_by_priority() {
    let mut rng = DetRng::seed(0x0f1e_0003);
    for _ in 0..64 {
        let n_vectors = rng.range(1, 32) as usize;
        let mut vectors = std::collections::HashSet::new();
        while vectors.len() < n_vectors {
            vectors.insert(rng.range(1, 255) as u8);
        }
        let mut apic = LocalApic::new();
        for &v in &vectors {
            apic.inject(v);
        }
        let mut last = 255u8;
        while let Some(v) = apic.ack() {
            assert!(v <= last, "priority order violated: {v} after {last}");
            assert!(
                vectors.remove(&v),
                "vector {v} delivered twice or never injected"
            );
            last = v;
            apic.eoi();
        }
        assert!(vectors.is_empty(), "undelivered vectors: {vectors:?}");
        assert!(apic.is_idle());
    }
}

#[test]
fn svt_ctx_encoding_round_trips() {
    let mut cases: Vec<Option<u8>> = vec![None];
    cases.extend((0u8..16).map(Some));
    for ctx in cases {
        let mut vmcs = Vmcs::new(VmcsRole::Host { guest_level: 1 }, Gpa(0));
        vmcs.set_svt_ctx(VmcsField::SvtVm, ctx);
        assert_eq!(vmcs.svt_ctx(VmcsField::SvtVm), ctx);
    }
}

//! Property tests of the virtualization hardware model.

use proptest::prelude::*;
use svt_mem::Gpa;
use svt_vmx::{Access, Ept, EptPerms, LocalApic, Vmcs, VmcsField, VmcsRole};

proptest! {
    #[test]
    fn vmcs_is_a_faithful_field_store(
        writes in prop::collection::vec((0usize..VmcsField::COUNT, any::<u64>()), 1..128)
    ) {
        let mut vmcs = Vmcs::new(VmcsRole::Shadow, Gpa(0x1000));
        let mut shadow = [0u64; VmcsField::COUNT];
        for (f, v) in &writes {
            vmcs.write(VmcsField::ALL[*f], *v);
            shadow[*f] = *v;
        }
        for (i, f) in VmcsField::ALL.iter().enumerate() {
            prop_assert_eq!(vmcs.read(*f), shadow[i]);
        }
        // Dirty tracking lists each written field exactly once.
        let mut expect: Vec<usize> = writes.iter().map(|(f, _)| *f).collect();
        expect.dedup_by(|a, b| a == b);
        let dirty = vmcs.take_dirty();
        let unique: std::collections::HashSet<_> = writes.iter().map(|(f, _)| *f).collect();
        prop_assert_eq!(dirty.len(), unique.len());
        prop_assert!(vmcs.dirty().is_empty());
    }

    #[test]
    fn ept_translation_preserves_offsets(
        maps in prop::collection::vec((0u64..512, 0u64..512), 1..64),
        offset in 0u64..4096,
    ) {
        let mut ept = Ept::new();
        for (g, h) in &maps {
            ept.map_page(*g, *h, EptPerms::RWX);
        }
        for (g, _) in &maps {
            let addr = Gpa(g * svt_mem::PAGE_SIZE + offset);
            let out = ept.translate(addr, Access::Read).unwrap();
            prop_assert_eq!(out.0 % svt_mem::PAGE_SIZE, offset);
        }
    }

    #[test]
    fn apic_delivers_every_vector_once_by_priority(
        mut vectors in prop::collection::hash_set(1u8..255, 1..32)
    ) {
        let mut apic = LocalApic::new();
        for &v in &vectors {
            apic.inject(v);
        }
        let mut last = 255u8;
        while let Some(v) = apic.ack() {
            prop_assert!(v <= last, "priority order violated: {v} after {last}");
            prop_assert!(vectors.remove(&v), "vector {v} delivered twice or never injected");
            last = v;
            apic.eoi();
        }
        prop_assert!(vectors.is_empty(), "undelivered vectors: {vectors:?}");
        prop_assert!(apic.is_idle());
    }

    #[test]
    fn svt_ctx_encoding_round_trips(ctx in prop::option::of(0u8..16)) {
        let mut vmcs = Vmcs::new(VmcsRole::Host { guest_level: 1 }, Gpa(0));
        vmcs.set_svt_ctx(VmcsField::SvtVm, ctx);
        prop_assert_eq!(vmcs.svt_ctx(VmcsField::SvtVm), ctx);
    }
}

//! VT-x-like hardware virtualization model.
//!
//! The single-level hardware virtualization substrate the paper's nested
//! stack is built on (§ 2.1):
//!
//! * [`Vmcs`]/[`VmcsField`] — VM state descriptors with the field
//!   classification that drives shadowing and transformation costs;
//! * [`ExitReason`] — every trap the hardware can raise, with the
//!   encode/decode path through the exit-information fields;
//! * [`ExecPolicy`] — which guest operations trap, including the nested
//!   policy merge L0 performs when building vmcs02;
//! * [`Ept`] — extended page tables with MMIO-misconfig marking and the
//!   two-level composition (`ept02 = ept12 ∘ ept01`);
//! * [`LocalApic`] — per-vCPU interrupts and the TSC-deadline timer.
//!
//! # Examples
//!
//! ```
//! use svt_vmx::{ExitReason, VmcsField, Vmcs, VmcsRole};
//! use svt_mem::Gpa;
//!
//! // L0 reflects a trap by encoding it into vmcs12's exit fields...
//! let mut vmcs12 = Vmcs::new(VmcsRole::Shadow, Gpa(0x3000));
//! let (code, qual) = ExitReason::Cpuid.encode();
//! vmcs12.write(VmcsField::ExitReason, code);
//! vmcs12.write(VmcsField::ExitQualification, qual);
//! // ...and L1 decodes what a real hypervisor could read back.
//! let decoded = ExitReason::decode(
//!     vmcs12.read(VmcsField::ExitReason),
//!     vmcs12.read(VmcsField::ExitQualification),
//! );
//! assert_eq!(decoded, Some(ExitReason::Cpuid));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod apic;
mod controls;
mod ept;
mod exit;
mod fields;
mod vmcs;

pub use apic::{
    DeliveryMode, IcrCommand, LocalApic, MSR_APIC_BASE, MSR_EFER, MSR_SPEC_CTRL, MSR_TSC_DEADLINE,
    MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI, VECTOR_TIMER, VECTOR_VIRTIO,
};
pub use controls::ExecPolicy;
pub use ept::{Access, Ept, EptFault, EptPerms};
pub use exit::ExitReason;
pub use fields::{FieldGroup, VmcsField};
pub use vmcs::{Vmcs, VmcsRole};

//! x86 VT-x backend facade.
//!
//! The VT-x model this crate originally housed now lives in the
//! ISA-neutral [`svt_arch`] crate, where it is one backend
//! ([`svt_arch::ArchId::X86`]) among N. This facade re-exports the whole
//! surface so existing `svt_vmx::` paths keep compiling; new code —
//! anything outside the x86 backend itself and bench glue — should
//! depend on `svt-arch` directly (`scripts/ci.sh` enforces the
//! layering).
//!
//! # Examples
//!
//! ```
//! use svt_vmx::{ExitReason, VmcsField, Vmcs, VmcsRole};
//! use svt_mem::Gpa;
//!
//! // L0 reflects a trap by encoding it into vmcs12's exit fields...
//! let mut vmcs12 = Vmcs::new(VmcsRole::Shadow, Gpa(0x3000));
//! let (code, qual) = ExitReason::Cpuid.encode();
//! vmcs12.write(VmcsField::ExitReason, code);
//! vmcs12.write(VmcsField::ExitQualification, qual);
//! // ...and L1 decodes what a real hypervisor could read back.
//! let decoded = ExitReason::decode(
//!     vmcs12.read(VmcsField::ExitReason),
//!     vmcs12.read(VmcsField::ExitQualification),
//! );
//! assert_eq!(decoded, Some(ExitReason::Cpuid));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use svt_arch::{
    Access, ArchId, DeliveryMode, Ept, EptFault, EptPerms, ExecPolicy, ExitReason, FieldGroup,
    IcrCommand, LocalApic, Vmcs, VmcsField, VmcsRole, MSR_APIC_BASE, MSR_EFER, MSR_SPEC_CTRL,
    MSR_TSC_DEADLINE, MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI, VECTOR_TIMER, VECTOR_VIRTIO,
};

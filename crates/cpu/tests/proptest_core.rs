//! Property tests of the SMT core: physical-register-file conservation,
//! cross-context access correctness, and the single-running-context
//! invariant under arbitrary operation sequences.

use proptest::prelude::*;
use svt_cpu::{CtxId, CtxtLevel, Gpr, SmtCore};

#[derive(Debug, Clone)]
enum Op {
    Write(u8, usize, u64),
    Switch(u8),
    Ctxtst(usize, u64),
    Ctxtld(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0usize..16, any::<u64>()).prop_map(|(c, r, v)| Op::Write(c, r, v)),
        (0u8..3).prop_map(Op::Switch),
        (0usize..16, any::<u64>()).prop_map(|(r, v)| Op::Ctxtst(r, v)),
        (0usize..16).prop_map(Op::Ctxtld),
    ]
}

proptest! {
    #[test]
    fn core_invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut core = SmtCore::new(3);
        core.micro_mut().vm = Some(CtxId(1));
        core.micro_mut().nested = Some(CtxId(2));
        let mut shadow = [[0u64; 16]; 3];
        for op in ops {
            match op {
                Op::Write(c, r, v) => {
                    core.write_gpr(CtxId(c), Gpr::ALL[r], v);
                    shadow[c as usize][r] = v;
                }
                Op::Switch(c) => {
                    core.switch_to(CtxId(c)).unwrap();
                    prop_assert_eq!(core.current(), CtxId(c));
                }
                Op::Ctxtst(r, v) => {
                    // Host view: target resolves to SVt_vm (ctx1).
                    core.micro_mut().is_vm = false;
                    core.ctxtst(CtxtLevel::Guest, Gpr::ALL[r], v).unwrap();
                    shadow[1][r] = v;
                }
                Op::Ctxtld(r) => {
                    core.micro_mut().is_vm = false;
                    let v = core.ctxtld(CtxtLevel::Guest, Gpr::ALL[r]).unwrap();
                    prop_assert_eq!(v, shadow[1][r]);
                }
            }
            // The design invariant: exactly one context ever runs.
            prop_assert_eq!(core.running_contexts(), 1);
        }
        for c in 0..3u8 {
            for (i, r) in Gpr::ALL.iter().enumerate() {
                prop_assert_eq!(core.read_gpr(CtxId(c), *r), shadow[c as usize][i]);
            }
        }
    }

    #[test]
    fn snapshot_load_transfers_exact_state(values in prop::collection::vec(any::<u64>(), 16)) {
        let mut core = SmtCore::new(2);
        for (r, v) in Gpr::ALL.iter().zip(&values) {
            core.write_gpr(CtxId(0), *r, *v);
        }
        let snap = core.snapshot_gprs(CtxId(0));
        core.load_gprs(CtxId(1), &snap);
        for (r, v) in Gpr::ALL.iter().zip(&values) {
            prop_assert_eq!(core.read_gpr(CtxId(1), *r), *v);
        }
    }
}

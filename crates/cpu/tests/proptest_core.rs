//! Property tests of the SMT core: physical-register-file conservation,
//! cross-context access correctness, and the single-running-context
//! invariant under arbitrary operation sequences.
//!
//! Randomised inputs are driven by the in-tree deterministic PRNG so the
//! cases are reproducible and the suite has no external dependencies.

use svt_cpu::{CtxId, CtxtLevel, Gpr, SmtCore};
use svt_sim::DetRng;

#[derive(Debug, Clone)]
enum Op {
    Write(u8, usize, u64),
    Switch(u8),
    Ctxtst(usize, u64),
    Ctxtld(usize),
}

fn random_op(rng: &mut DetRng) -> Op {
    match rng.below(4) {
        0 => Op::Write(rng.below(3) as u8, rng.below(16) as usize, rng.next_u64()),
        1 => Op::Switch(rng.below(3) as u8),
        2 => Op::Ctxtst(rng.below(16) as usize, rng.next_u64()),
        _ => Op::Ctxtld(rng.below(16) as usize),
    }
}

#[test]
fn core_invariants_hold_under_arbitrary_ops() {
    let mut rng = DetRng::seed(0xc0de_0001);
    for _ in 0..64 {
        let n_ops = rng.range(1, 200) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut core = SmtCore::new(3);
        core.micro_mut().vm = Some(CtxId(1));
        core.micro_mut().nested = Some(CtxId(2));
        let mut shadow = [[0u64; 16]; 3];
        for op in ops {
            match op {
                Op::Write(c, r, v) => {
                    core.write_gpr(CtxId(c), Gpr::ALL[r], v);
                    shadow[c as usize][r] = v;
                }
                Op::Switch(c) => {
                    core.switch_to(CtxId(c)).unwrap();
                    assert_eq!(core.current(), CtxId(c));
                }
                Op::Ctxtst(r, v) => {
                    // Host view: target resolves to SVt_vm (ctx1).
                    core.micro_mut().is_vm = false;
                    core.ctxtst(CtxtLevel::Guest, Gpr::ALL[r], v).unwrap();
                    shadow[1][r] = v;
                }
                Op::Ctxtld(r) => {
                    core.micro_mut().is_vm = false;
                    let v = core.ctxtld(CtxtLevel::Guest, Gpr::ALL[r]).unwrap();
                    assert_eq!(v, shadow[1][r]);
                }
            }
            // The design invariant: exactly one context ever runs.
            assert_eq!(core.running_contexts(), 1);
        }
        for c in 0..3u8 {
            for (i, r) in Gpr::ALL.iter().enumerate() {
                assert_eq!(core.read_gpr(CtxId(c), *r), shadow[c as usize][i]);
            }
        }
    }
}

#[test]
fn snapshot_load_transfers_exact_state() {
    let mut rng = DetRng::seed(0xc0de_0002);
    for _ in 0..64 {
        let values: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut core = SmtCore::new(2);
        for (r, v) in Gpr::ALL.iter().zip(&values) {
            core.write_gpr(CtxId(0), *r, *v);
        }
        let snap = core.snapshot_gprs(CtxId(0));
        core.load_gprs(CtxId(1), &snap);
        for (r, v) in Gpr::ALL.iter().zip(&values) {
            assert_eq!(core.read_gpr(CtxId(1), *r), *v);
        }
    }
}

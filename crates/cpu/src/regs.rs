//! Architectural registers and the shared physical register file.
//!
//! SVt's cross-context register access (`ctxtld`/`ctxtst`) works because
//! SMT threads of one core share a single physical register file (PRF) and
//! differ only in their per-thread *rename maps*. The model reproduces that
//! structure: [`PhysRegFile`] holds the shared storage with a free list,
//! and each hardware context owns a [`RenameMap`] indexing into it. A
//! cross-context access simply walks the *target* context's rename map —
//! exactly the mechanism § 4 of the paper describes.

use std::fmt;

/// The sixteen x86-64 general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Gpr {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Gpr {
    /// All GPRs in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rbx,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::Rbp,
        Gpr::Rsp,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Number of GPRs.
    pub const COUNT: usize = 16;

    /// Index of this register in encoding order.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// A full snapshot of one context's GPRs, used when hypervisors save or
/// load guest state.
///
/// # Examples
///
/// ```
/// use svt_cpu::{Gpr, GprState};
///
/// let mut s = GprState::default();
/// s.set(Gpr::Rax, 42);
/// assert_eq!(s.get(Gpr::Rax), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GprState([u64; Gpr::COUNT]);

impl GprState {
    /// Value of one register.
    pub fn get(&self, r: Gpr) -> u64 {
        self.0[r.index()]
    }

    /// Sets one register.
    pub fn set(&mut self, r: Gpr, v: u64) {
        self.0[r.index()] = v;
    }

    /// Iterates over `(register, value)` pairs in encoding order.
    pub fn iter(&self) -> impl Iterator<Item = (Gpr, u64)> + '_ {
        Gpr::ALL.iter().map(move |&r| (r, self.get(r)))
    }
}

/// Identifier of one physical register inside the shared file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg(usize);

/// The core-wide shared physical register file with a free list.
///
/// # Panics
///
/// Allocation panics if the file is exhausted; the core sizes it as
/// `contexts × GPRs × 2` so steady-state renaming never exhausts it.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    slots: Vec<u64>,
    free: Vec<usize>,
}

impl PhysRegFile {
    /// Creates a file with `capacity` physical registers, all free.
    pub fn new(capacity: usize) -> Self {
        PhysRegFile {
            slots: vec![0; capacity],
            free: (0..capacity).rev().collect(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Currently free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates a physical register holding `value`.
    ///
    /// # Panics
    ///
    /// Panics if the file is exhausted (a modeling bug, not a guest error).
    pub fn alloc(&mut self, value: u64) -> PhysReg {
        let idx = self.free.pop().expect("physical register file exhausted");
        self.slots[idx] = value;
        PhysReg(idx)
    }

    /// Returns a physical register to the free list.
    pub fn release(&mut self, r: PhysReg) {
        debug_assert!(!self.free.contains(&r.0), "double free of {r:?}");
        self.free.push(r.0);
    }

    /// Reads a physical register.
    pub fn read(&self, r: PhysReg) -> u64 {
        self.slots[r.0]
    }

    /// Writes a physical register in place (used by cross-context stores,
    /// which update the target's current physical register rather than
    /// renaming — only one context executes at a time under SVt, so there
    /// is no write-after-read hazard).
    pub fn write(&mut self, r: PhysReg, v: u64) {
        self.slots[r.0] = v;
    }
}

/// One hardware context's architectural-to-physical register mapping.
#[derive(Debug, Clone)]
pub struct RenameMap {
    map: [PhysReg; Gpr::COUNT],
}

impl RenameMap {
    /// Creates a map with freshly allocated physical registers (all zero).
    pub fn new(prf: &mut PhysRegFile) -> Self {
        RenameMap {
            map: std::array::from_fn(|_| prf.alloc(0)),
        }
    }

    /// The physical register currently backing `r`.
    pub fn lookup(&self, r: Gpr) -> PhysReg {
        self.map[r.index()]
    }

    /// Renames `r` to a new physical register holding `v`, releasing the
    /// old one — the normal in-context write path.
    pub fn rename(&mut self, prf: &mut PhysRegFile, r: Gpr, v: u64) {
        let old = self.map[r.index()];
        self.map[r.index()] = prf.alloc(v);
        prf.release(old);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_indices_are_dense() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Gpr::COUNT, Gpr::ALL.len());
    }

    #[test]
    fn gpr_state_round_trip() {
        let mut s = GprState::default();
        for (i, r) in Gpr::ALL.iter().enumerate() {
            s.set(*r, i as u64 * 3);
        }
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(s.get(*r), i as u64 * 3);
        }
        assert_eq!(s.iter().count(), 16);
    }

    #[test]
    fn prf_alloc_release_cycle() {
        let mut prf = PhysRegFile::new(4);
        assert_eq!(prf.free_count(), 4);
        let a = prf.alloc(10);
        let b = prf.alloc(20);
        assert_eq!(prf.read(a), 10);
        assert_eq!(prf.read(b), 20);
        assert_eq!(prf.free_count(), 2);
        prf.release(a);
        assert_eq!(prf.free_count(), 3);
        let c = prf.alloc(30);
        assert_eq!(prf.read(c), 30);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn prf_exhaustion_panics() {
        let mut prf = PhysRegFile::new(1);
        let _a = prf.alloc(1);
        let _b = prf.alloc(2);
    }

    #[test]
    fn rename_points_to_new_value_and_recycles() {
        let mut prf = PhysRegFile::new(Gpr::COUNT + 2);
        let mut map = RenameMap::new(&mut prf);
        assert_eq!(prf.free_count(), 2);
        let before = map.lookup(Gpr::Rax);
        map.rename(&mut prf, Gpr::Rax, 99);
        let after = map.lookup(Gpr::Rax);
        assert_ne!(before, after);
        assert_eq!(prf.read(after), 99);
        // The old physical register was recycled: the file never grows.
        assert_eq!(prf.free_count(), 2);
    }

    #[test]
    fn two_maps_share_one_file() {
        let mut prf = PhysRegFile::new(Gpr::COUNT * 2 + 4);
        let map0 = RenameMap::new(&mut prf);
        let map1 = RenameMap::new(&mut prf);
        // Writing through map1's physical register is visible to any reader
        // that walks map1 — the mechanism behind ctxtld/ctxtst.
        let p = map1.lookup(Gpr::Rbx);
        prf.write(p, 0x5157); // "SVt"
        assert_eq!(prf.read(map1.lookup(Gpr::Rbx)), 0x5157);
        assert_eq!(prf.read(map0.lookup(Gpr::Rbx)), 0);
    }
}

//! SMT core model with the SVt extensions.
//!
//! Models the hardware half of the paper's co-design: SMT contexts with a
//! shared physical register file and per-context rename maps
//! ([`PhysRegFile`], [`RenameMap`]), the per-core SVt µ-registers
//! ([`MicroRegs`]), thread stall/resume switching, and the
//! `ctxtld`/`ctxtst` cross-context register instructions with virtualized
//! context indirection ([`SmtCore::ctxtld`], [`SmtCore::ctxtst`]).
//!
//! # Examples
//!
//! ```
//! use svt_cpu::{CtxId, CtxtLevel, Gpr, SmtCore};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut core = SmtCore::new(3);
//! // The host hypervisor (ctx0) configures its guest on ctx1 and writes
//! // the guest's RAX directly through the shared register file.
//! core.micro_mut().vm = Some(CtxId(1));
//! core.ctxtst(CtxtLevel::Guest, Gpr::Rax, 42)?;
//! assert_eq!(core.read_gpr(CtxId(1), Gpr::Rax), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod core;
mod regs;

pub use crate::core::{CtxId, CtxtLevel, MicroRegs, SmtCore, SpecialRegs, SvtFault};
pub use regs::{Gpr, GprState, PhysReg, PhysRegFile, RenameMap};

//! The SMT core with SVt extensions.
//!
//! An [`SmtCore`] owns N hardware contexts (SMT threads) that share one
//! physical register file. The SVt extension (paper § 4) adds per-core
//! µ-registers — `SVt_current`, cached copies of the `SVt_visor`/`SVt_vm`/
//! `SVt_nested` VMCS fields, and `is_vm` — plus the `ctxtld`/`ctxtst`
//! cross-context register instructions and thread stall/resume switching.

use std::error::Error;
use std::fmt;

use crate::regs::{Gpr, GprState, PhysRegFile, RenameMap};

/// Identifier of a hardware context (SMT thread) within one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u8);

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// Target-selection argument of `ctxtld`/`ctxtst` (paper § 4): contexts are
/// addressed *indirectly* by virtualization depth, never by raw id, so L0
/// can virtualize the ids L1 sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxtLevel {
    /// The direct guest VM (`SVt_vm` when run by a host, `SVt_nested` when
    /// run by a guest hypervisor).
    Guest,
    /// The nested VM (`SVt_nested`; only valid from the host hypervisor).
    Nested,
}

/// Faults raised by SVt operations; real hardware would deliver these as
/// VM traps into the supervising hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvtFault {
    /// The selected µ-register holds no valid context (e.g. `lvl == 2`
    /// with an invalid `SVt_nested`): the hypervisor must emulate deeper
    /// hierarchies in software.
    NoTargetContext,
    /// The level/`is_vm` combination is architecturally undefined.
    InvalidLevel,
    /// A context id named a thread the core does not have.
    BadContext(CtxId),
}

impl fmt::Display for SvtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvtFault::NoTargetContext => write!(f, "no target context configured"),
            SvtFault::InvalidLevel => write!(f, "invalid cross-context level"),
            SvtFault::BadContext(c) => write!(f, "context {c} does not exist"),
        }
    }
}

impl Error for SvtFault {}

/// Per-core SVt µ-registers (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroRegs {
    /// Context instructions are fetched from (`SVt_current`).
    pub current: CtxId,
    /// Cached `SVt_visor` field of the loaded VMCS.
    pub visor: Option<CtxId>,
    /// Cached `SVt_vm` field of the loaded VMCS.
    pub vm: Option<CtxId>,
    /// Cached `SVt_nested` field of the loaded VMCS.
    pub nested: Option<CtxId>,
    /// Whether a VM is currently executing (`is_vm`; pre-existing).
    pub is_vm: bool,
}

impl Default for MicroRegs {
    fn default() -> Self {
        MicroRegs {
            current: CtxId(0),
            visor: None,
            vm: None,
            nested: None,
            is_vm: false,
        }
    }
}

/// Per-context non-renamed architectural state.
#[derive(Debug, Clone, Default)]
pub struct SpecialRegs {
    /// Instruction pointer.
    pub rip: u64,
    /// Flags.
    pub rflags: u64,
    /// CR0 (coarse).
    pub cr0: u64,
    /// CR3 — guest page-table root.
    pub cr3: u64,
    /// CR4.
    pub cr4: u64,
    /// EFER.
    pub efer: u64,
}

#[derive(Debug, Clone)]
struct HwContext {
    rename: RenameMap,
    special: SpecialRegs,
    stalled: bool,
}

/// An SMT core with SVt support.
///
/// # Examples
///
/// ```
/// use svt_cpu::{CtxId, Gpr, SmtCore};
///
/// let mut core = SmtCore::new(3);
/// core.write_gpr(CtxId(1), Gpr::Rax, 7);
/// assert_eq!(core.read_gpr(CtxId(1), Gpr::Rax), 7);
/// assert_eq!(core.read_gpr(CtxId(0), Gpr::Rax), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SmtCore {
    prf: PhysRegFile,
    contexts: Vec<HwContext>,
    micro: MicroRegs,
}

impl SmtCore {
    /// Creates a core with `n` hardware contexts. Context 0 starts active;
    /// the rest start stalled.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a core needs at least one context");
        // Twice the architectural registers per context: enough headroom
        // that in-flight renames never exhaust the file.
        let mut prf = PhysRegFile::new(n * Gpr::COUNT * 2);
        let contexts = (0..n)
            .map(|i| HwContext {
                rename: RenameMap::new(&mut prf),
                special: SpecialRegs::default(),
                stalled: i != 0,
            })
            .collect();
        SmtCore {
            prf,
            contexts,
            micro: MicroRegs::default(),
        }
    }

    /// Number of hardware contexts.
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// The µ-register block.
    pub fn micro(&self) -> &MicroRegs {
        &self.micro
    }

    /// Mutable µ-register block (loaded from VMCS fields at VMPTRLD by the
    /// virtualization hardware).
    pub fn micro_mut(&mut self) -> &mut MicroRegs {
        &mut self.micro
    }

    /// The context currently fetching instructions.
    pub fn current(&self) -> CtxId {
        self.micro.current
    }

    /// Whether `ctx` exists on this core.
    pub fn has_context(&self, ctx: CtxId) -> bool {
        (ctx.0 as usize) < self.contexts.len()
    }

    fn ctx(&self, ctx: CtxId) -> &HwContext {
        &self.contexts[ctx.0 as usize]
    }

    fn ctx_mut(&mut self, ctx: CtxId) -> &mut HwContext {
        &mut self.contexts[ctx.0 as usize]
    }

    /// Whether `ctx` is stalled.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn is_stalled(&self, ctx: CtxId) -> bool {
        self.ctx(ctx).stalled
    }

    /// Reads a GPR of any context through the shared PRF.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn read_gpr(&self, ctx: CtxId, r: Gpr) -> u64 {
        self.prf.read(self.ctx(ctx).rename.lookup(r))
    }

    /// Writes a GPR of the given context. In-context writes rename; the
    /// distinction is invisible architecturally.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn write_gpr(&mut self, ctx: CtxId, r: Gpr, v: u64) {
        let idx = ctx.0 as usize;
        let (prf, c) = (&mut self.prf, &mut self.contexts[idx]);
        c.rename.rename(prf, r, v);
    }

    /// Snapshot of all GPRs of a context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn snapshot_gprs(&self, ctx: CtxId) -> GprState {
        let mut s = GprState::default();
        for r in Gpr::ALL {
            s.set(r, self.read_gpr(ctx, r));
        }
        s
    }

    /// Loads all GPRs of a context from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn load_gprs(&mut self, ctx: CtxId, s: &GprState) {
        for (r, v) in s.iter() {
            self.write_gpr(ctx, r, v);
        }
    }

    /// The non-renamed special registers of a context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn special(&self, ctx: CtxId) -> &SpecialRegs {
        &self.ctx(ctx).special
    }

    /// Mutable special registers of a context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` does not exist.
    pub fn special_mut(&mut self, ctx: CtxId) -> &mut SpecialRegs {
        &mut self.ctx_mut(ctx).special
    }

    /// Resolves the target context of a `ctxtld`/`ctxtst`, applying the
    /// virtualized indirection of § 4: host hypervisors reach `SVt_vm`
    /// (`Guest`) and `SVt_nested` (`Nested`); guest hypervisors reach only
    /// `SVt_nested` via `Guest`.
    ///
    /// # Errors
    ///
    /// Returns the [`SvtFault`] the hardware would deliver as a VM trap.
    pub fn ctxt_target(&self, lvl: CtxtLevel) -> Result<CtxId, SvtFault> {
        let slot = match (self.micro.is_vm, lvl) {
            (false, CtxtLevel::Guest) => self.micro.vm,
            (false, CtxtLevel::Nested) => self.micro.nested,
            (true, CtxtLevel::Guest) => self.micro.nested,
            (true, CtxtLevel::Nested) => return Err(SvtFault::InvalidLevel),
        };
        let ctx = slot.ok_or(SvtFault::NoTargetContext)?;
        if !self.has_context(ctx) {
            return Err(SvtFault::BadContext(ctx));
        }
        Ok(ctx)
    }

    /// `ctxtld lvl, reg` — reads a register of the subordinate context.
    ///
    /// # Errors
    ///
    /// Returns the fault the hardware would trap with when no valid target
    /// is configured.
    pub fn ctxtld(&self, lvl: CtxtLevel, r: Gpr) -> Result<u64, SvtFault> {
        let target = self.ctxt_target(lvl)?;
        Ok(self.read_gpr(target, r))
    }

    /// `ctxtst lvl, reg, value` — writes a register of the subordinate
    /// context in place through the shared PRF.
    ///
    /// # Errors
    ///
    /// Returns the fault the hardware would trap with when no valid target
    /// is configured.
    pub fn ctxtst(&mut self, lvl: CtxtLevel, r: Gpr, v: u64) -> Result<(), SvtFault> {
        let target = self.ctxt_target(lvl)?;
        let p = self.ctx(target).rename.lookup(r);
        self.prf.write(p, v);
        Ok(())
    }

    /// Stalls the active context and resumes `to` — the SVt replacement
    /// for a VM trap or resume. Only one context runs at any instant.
    ///
    /// # Errors
    ///
    /// Returns [`SvtFault::BadContext`] if `to` does not exist.
    pub fn switch_to(&mut self, to: CtxId) -> Result<(), SvtFault> {
        if !self.has_context(to) {
            return Err(SvtFault::BadContext(to));
        }
        let from = self.micro.current;
        self.ctx_mut(from).stalled = true;
        self.ctx_mut(to).stalled = false;
        self.micro.current = to;
        Ok(())
    }

    /// Number of contexts currently running (always 1 under SVt: the
    /// single-effective-thread invariant of § 3.1).
    pub fn running_contexts(&self) -> usize {
        self.contexts.iter().filter(|c| !c.stalled).count()
    }

    /// Serializes the core's *architectural* state for
    /// `svt_sim::snapshot`: per-context GPRs (read through the rename
    /// maps), special registers, stall flags, and the µ-register block.
    /// The physical-register-file slot permutation is deliberately not
    /// serialized — it is architecturally invisible (every read goes
    /// through a rename map), so a restored core is indistinguishable
    /// from the original to all software.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.usize(self.contexts.len());
        for i in 0..self.contexts.len() {
            let ctx = CtxId(i as u8);
            let gprs = self.snapshot_gprs(ctx);
            for r in Gpr::ALL {
                w.u64(gprs.get(r));
            }
            let sp = self.special(ctx);
            w.u64(sp.rip);
            w.u64(sp.rflags);
            w.u64(sp.cr0);
            w.u64(sp.cr3);
            w.u64(sp.cr4);
            w.u64(sp.efer);
            w.bool(self.contexts[i].stalled);
        }
        w.u8(self.micro.current.0);
        snap_opt_ctx(w, self.micro.visor);
        snap_opt_ctx(w, self.micro.vm);
        snap_opt_ctx(w, self.micro.nested);
        w.bool(self.micro.is_vm);
    }

    /// Restores state written by [`SmtCore::snap_save`] into a core with
    /// the same context count.
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation or a context-count mismatch.
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        let n = r.usize()?;
        if n != self.contexts.len() {
            return Err(svt_sim::SnapError::ShapeMismatch {
                what: "SMT context count",
                snapshot: n as u64,
                live: self.contexts.len() as u64,
            });
        }
        for i in 0..n {
            let ctx = CtxId(i as u8);
            let mut gprs = GprState::default();
            for reg in Gpr::ALL {
                gprs.set(reg, r.u64()?);
            }
            self.load_gprs(ctx, &gprs);
            let sp = self.special_mut(ctx);
            sp.rip = r.u64()?;
            sp.rflags = r.u64()?;
            sp.cr0 = r.u64()?;
            sp.cr3 = r.u64()?;
            sp.cr4 = r.u64()?;
            sp.efer = r.u64()?;
            self.contexts[i].stalled = r.bool()?;
        }
        self.micro.current = CtxId(r.u8()?);
        self.micro.visor = snap_load_opt_ctx(r)?;
        self.micro.vm = snap_load_opt_ctx(r)?;
        self.micro.nested = snap_load_opt_ctx(r)?;
        self.micro.is_vm = r.bool()?;
        Ok(())
    }

    /// Folds the architectural state into a fingerprint, same coverage as
    /// [`SmtCore::snap_save`].
    pub fn snap_fingerprint(&self, fp: &mut svt_sim::snapshot::Fingerprint) {
        fp.fold(self.contexts.len() as u64);
        for i in 0..self.contexts.len() {
            let ctx = CtxId(i as u8);
            for r in Gpr::ALL {
                fp.fold(self.read_gpr(ctx, r));
            }
            let sp = self.special(ctx);
            fp.fold(sp.rip);
            fp.fold(sp.rflags);
            fp.fold(sp.cr0);
            fp.fold(sp.cr3);
            fp.fold(sp.cr4);
            fp.fold(sp.efer);
            fp.fold(self.contexts[i].stalled as u64);
        }
        fp.fold(self.micro.current.0 as u64);
        fp.fold(self.micro.visor.map_or(u64::MAX, |c| c.0 as u64));
        fp.fold(self.micro.vm.map_or(u64::MAX, |c| c.0 as u64));
        fp.fold(self.micro.nested.map_or(u64::MAX, |c| c.0 as u64));
        fp.fold(self.micro.is_vm as u64);
    }
}

fn snap_opt_ctx(w: &mut svt_sim::SnapWriter, v: Option<CtxId>) {
    match v {
        Some(c) => {
            w.u8(1);
            w.u8(c.0);
        }
        None => w.u8(0),
    }
}

fn snap_load_opt_ctx(r: &mut svt_sim::SnapReader<'_>) -> Result<Option<CtxId>, svt_sim::SnapError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(CtxId(r.u8()?))),
        b => Err(svt_sim::SnapError::BadValue {
            what: "CtxId option tag",
            got: b as u64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_have_private_architectural_state() {
        let mut core = SmtCore::new(3);
        core.write_gpr(CtxId(0), Gpr::Rcx, 1);
        core.write_gpr(CtxId(1), Gpr::Rcx, 2);
        core.write_gpr(CtxId(2), Gpr::Rcx, 3);
        assert_eq!(core.read_gpr(CtxId(0), Gpr::Rcx), 1);
        assert_eq!(core.read_gpr(CtxId(1), Gpr::Rcx), 2);
        assert_eq!(core.read_gpr(CtxId(2), Gpr::Rcx), 3);
    }

    #[test]
    fn snapshot_and_load_round_trip() {
        let mut core = SmtCore::new(2);
        for (i, r) in Gpr::ALL.iter().enumerate() {
            core.write_gpr(CtxId(0), *r, 100 + i as u64);
        }
        let snap = core.snapshot_gprs(CtxId(0));
        core.load_gprs(CtxId(1), &snap);
        assert_eq!(core.snapshot_gprs(CtxId(1)), snap);
    }

    #[test]
    fn single_effective_thread_invariant() {
        let mut core = SmtCore::new(3);
        assert_eq!(core.running_contexts(), 1);
        assert_eq!(core.current(), CtxId(0));
        core.switch_to(CtxId(2)).unwrap();
        assert_eq!(core.running_contexts(), 1);
        assert_eq!(core.current(), CtxId(2));
        assert!(core.is_stalled(CtxId(0)));
        assert!(!core.is_stalled(CtxId(2)));
        assert_eq!(
            core.switch_to(CtxId(9)),
            Err(SvtFault::BadContext(CtxId(9)))
        );
    }

    #[test]
    fn ctxt_access_from_host() {
        let mut core = SmtCore::new(3);
        core.micro_mut().vm = Some(CtxId(1));
        core.micro_mut().nested = Some(CtxId(2));
        core.micro_mut().is_vm = false;
        core.write_gpr(CtxId(1), Gpr::Rdx, 11);
        core.write_gpr(CtxId(2), Gpr::Rdx, 22);
        assert_eq!(core.ctxtld(CtxtLevel::Guest, Gpr::Rdx), Ok(11));
        assert_eq!(core.ctxtld(CtxtLevel::Nested, Gpr::Rdx), Ok(22));
        core.ctxtst(CtxtLevel::Guest, Gpr::Rdx, 99).unwrap();
        assert_eq!(core.read_gpr(CtxId(1), Gpr::Rdx), 99);
    }

    #[test]
    fn ctxt_access_from_guest_hypervisor_is_virtualized() {
        let mut core = SmtCore::new(3);
        // L1 executes with is_vm == 1; its "guest" is whatever L0 put in
        // SVt_nested (context 2), even though L1 believes it is context 1.
        core.micro_mut().vm = Some(CtxId(1));
        core.micro_mut().nested = Some(CtxId(2));
        core.micro_mut().is_vm = true;
        core.write_gpr(CtxId(2), Gpr::Rax, 0x1234);
        assert_eq!(core.ctxtld(CtxtLevel::Guest, Gpr::Rax), Ok(0x1234));
        assert_eq!(
            core.ctxtld(CtxtLevel::Nested, Gpr::Rax),
            Err(SvtFault::InvalidLevel)
        );
    }

    #[test]
    fn invalid_targets_fault_for_hypervisor_emulation() {
        let mut core = SmtCore::new(2);
        core.micro_mut().is_vm = false;
        core.micro_mut().vm = None;
        assert_eq!(
            core.ctxtld(CtxtLevel::Guest, Gpr::Rax),
            Err(SvtFault::NoTargetContext)
        );
        core.micro_mut().nested = Some(CtxId(7));
        assert_eq!(
            core.ctxtld(CtxtLevel::Nested, Gpr::Rax),
            Err(SvtFault::BadContext(CtxId(7)))
        );
    }

    #[test]
    fn cross_context_store_preserves_other_registers() {
        let mut core = SmtCore::new(2);
        core.micro_mut().vm = Some(CtxId(1));
        core.write_gpr(CtxId(1), Gpr::Rax, 1);
        core.write_gpr(CtxId(1), Gpr::Rbx, 2);
        core.ctxtst(CtxtLevel::Guest, Gpr::Rax, 77).unwrap();
        assert_eq!(core.read_gpr(CtxId(1), Gpr::Rax), 77);
        assert_eq!(core.read_gpr(CtxId(1), Gpr::Rbx), 2);
    }

    #[test]
    fn special_regs_are_per_context() {
        let mut core = SmtCore::new(2);
        core.special_mut(CtxId(0)).rip = 0x1000;
        core.special_mut(CtxId(1)).rip = 0x2000;
        assert_eq!(core.special(CtxId(0)).rip, 0x1000);
        assert_eq!(core.special(CtxId(1)).rip, 0x2000);
    }

    #[test]
    fn heavy_write_traffic_never_exhausts_prf() {
        let mut core = SmtCore::new(3);
        for i in 0..10_000u64 {
            let ctx = CtxId((i % 3) as u8);
            let r = Gpr::ALL[(i % 16) as usize];
            core.write_gpr(ctx, r, i);
        }
        assert_eq!(core.read_gpr(CtxId(0), Gpr::Rax,), 9984);
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_context_core_rejected() {
        let _ = SmtCore::new(0);
    }
}

//! VMCS field definitions.
//!
//! The field set mirrors the parts of Intel's VMCS the nested-virt control
//! flow actually touches, plus the three SVt fields the paper adds
//! (Table 2). Each field is classified by:
//!
//! * whether it carries a **physical address** (those must be translated
//!   from L1-guest-physical to host-physical during the vmcs12→vmcs02
//!   transformation — the expensive part of § 2.2);
//! * whether Intel's hardware **VMCS shadowing** can satisfy reads/writes
//!   from L1 without a VM exit (address-bearing and control fields cannot
//!   be shadowed, which is why shadowing "provides limited benefits").

macro_rules! vmcs_fields {
    ($($name:ident => ($group:ident, $addr:expr, $shadow_r:expr, $shadow_w:expr),)*) => {
        /// One field of a VM state descriptor (VMCS).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum VmcsField {
            $($name,)*
        }

        impl VmcsField {
            /// Every defined field, in declaration order.
            pub const ALL: &'static [VmcsField] = &[$(VmcsField::$name,)*];

            /// Number of defined fields.
            pub const COUNT: usize = Self::ALL.len();

            /// Dense index for array-backed storage.
            pub const fn index(self) -> usize {
                self as usize
            }

            /// Functional group of this field.
            pub const fn group(self) -> FieldGroup {
                match self {
                    $(VmcsField::$name => FieldGroup::$group,)*
                }
            }

            /// Whether the field holds a physical address that must be
            /// translated between address spaces during VMCS shadowing
            /// transformations.
            pub const fn is_address(self) -> bool {
                match self {
                    $(VmcsField::$name => $addr,)*
                }
            }

            /// Whether hardware VMCS shadowing can satisfy a guest `vmread`
            /// of this field without a VM exit.
            pub const fn shadow_readable(self) -> bool {
                match self {
                    $(VmcsField::$name => $shadow_r,)*
                }
            }

            /// Whether hardware VMCS shadowing can satisfy a guest
            /// `vmwrite` of this field without a VM exit.
            pub const fn shadow_writable(self) -> bool {
                match self {
                    $(VmcsField::$name => $shadow_w,)*
                }
            }

            /// Field name for tracing.
            pub const fn name(self) -> &'static str {
                match self {
                    $(VmcsField::$name => stringify!($name),)*
                }
            }
        }
    };
}

/// Functional group of a VMCS field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldGroup {
    /// Guest-state area (saved/loaded on exit/entry).
    Guest,
    /// Host-state area (loaded on exit).
    Host,
    /// Execution, entry and exit controls.
    Control,
    /// Read-only exit information.
    ExitInfo,
    /// SVt extension fields (Table 2 of the paper).
    Svt,
}

vmcs_fields! {
    // Guest state                      (group,  addr,  shadow_r, shadow_w)
    GuestRip                         => (Guest,   false, true,  true),
    GuestRsp                         => (Guest,   false, true,  true),
    GuestRflags                      => (Guest,   false, true,  true),
    GuestCr0                         => (Guest,   false, true,  true),
    GuestCr3                         => (Guest,   false, true,  false),
    GuestCr4                         => (Guest,   false, true,  true),
    GuestEfer                        => (Guest,   false, true,  true),
    GuestCsBase                      => (Guest,   false, true,  true),
    GuestSsBase                      => (Guest,   false, true,  true),
    GuestDsBase                      => (Guest,   false, true,  true),
    GuestEsBase                      => (Guest,   false, true,  true),
    GuestFsBase                      => (Guest,   false, true,  true),
    GuestGsBase                      => (Guest,   false, true,  true),
    GuestTrBase                      => (Guest,   false, true,  true),
    GuestGdtrBase                    => (Guest,   false, true,  true),
    GuestIdtrBase                    => (Guest,   false, true,  true),
    GuestIntrState                   => (Guest,   false, true,  true),
    GuestActivityState              => (Guest,   false, true,  true),
    // Host state
    HostRip                          => (Host,    false, false, false),
    HostRsp                          => (Host,    false, false, false),
    HostCr0                          => (Host,    false, false, false),
    HostCr3                          => (Host,    false, false, false),
    HostCr4                          => (Host,    false, false, false),
    HostEfer                         => (Host,    false, false, false),
    HostFsBase                       => (Host,    false, false, false),
    HostGsBase                       => (Host,    false, false, false),
    HostTrBase                       => (Host,    false, false, false),
    // Controls
    PinBasedControls                 => (Control, false, true,  false),
    ProcBasedControls                => (Control, false, true,  false),
    SecondaryControls                => (Control, false, true,  false),
    ExceptionBitmap                  => (Control, false, true,  false),
    IoBitmapA                        => (Control, true,  false, false),
    IoBitmapB                        => (Control, true,  false, false),
    MsrBitmap                        => (Control, true,  false, false),
    EptPointer                       => (Control, true,  false, false),
    VmcsLinkPointer                  => (Control, true,  false, false),
    TscOffset                        => (Control, false, true,  false),
    VmEntryControls                  => (Control, false, true,  false),
    VmExitControls                   => (Control, false, true,  false),
    VmEntryIntrInfo                  => (Control, false, true,  true),
    VmEntryIntrErrCode               => (Control, false, true,  true),
    TprThreshold                     => (Control, false, true,  false),
    PreemptionTimerValue             => (Control, false, true,  false),
    // Exit information (read-only to guests)
    ExitReason                       => (ExitInfo, false, true, false),
    ExitQualification                => (ExitInfo, false, true, false),
    GuestLinearAddr                  => (ExitInfo, false, true, false),
    GuestPhysAddr                    => (ExitInfo, false, true, false),
    ExitIntrInfo                     => (ExitInfo, false, true, false),
    ExitIntrErrCode                  => (ExitInfo, false, true, false),
    ExitInstrLen                     => (ExitInfo, false, true, false),
    ExitInstrInfo                    => (ExitInfo, false, true, false),
    IdtVectoringInfo                 => (ExitInfo, false, true, false),
    IdtVectoringErrCode              => (ExitInfo, false, true, false),
    // SVt extension (paper Table 2)
    SvtVisor                         => (Svt,     false, false, false),
    SvtVm                            => (Svt,     false, false, false),
    SvtNested                        => (Svt,     false, false, false),
}

impl VmcsField {
    /// The exit-information fields copied from vmcs02 into vmcs12 when L0
    /// reflects a nested trap (the forward transformation of Algorithm 1,
    /// line 3).
    pub fn exit_info_fields() -> impl Iterator<Item = VmcsField> {
        Self::ALL
            .iter()
            .copied()
            .filter(|f| f.group() == FieldGroup::ExitInfo)
    }

    /// The address-bearing control fields requiring translation in the
    /// backward transformation (Algorithm 1, line 14).
    pub fn address_fields() -> impl Iterator<Item = VmcsField> {
        Self::ALL.iter().copied().filter(|f| f.is_address())
    }

    /// Guest-state fields (saved/restored around entries and exits).
    pub fn guest_fields() -> impl Iterator<Item = VmcsField> {
        Self::ALL
            .iter()
            .copied()
            .filter(|f| f.group() == FieldGroup::Guest)
    }

    /// The SVt extension fields.
    pub const SVT_FIELDS: [VmcsField; 3] =
        [VmcsField::SvtVisor, VmcsField::SvtVm, VmcsField::SvtNested];

    /// The ten lazily-synced guest-context fields the *forward*
    /// transformation copies from vmcs02 into vmcs12 when L0 reflects a
    /// nested trap ("reflect any changes performed by L2", § 2.2).
    pub const SYNC_FIELDS: [VmcsField; 10] = [
        VmcsField::GuestRip,
        VmcsField::GuestRsp,
        VmcsField::GuestRflags,
        VmcsField::GuestCr0,
        VmcsField::GuestCr3,
        VmcsField::GuestCr4,
        VmcsField::GuestEfer,
        VmcsField::GuestIntrState,
        VmcsField::GuestActivityState,
        VmcsField::GuestCsBase,
    ];

    /// The ten entry-relevant fields the *backward* transformation copies
    /// from vmcs12 into vmcs02 before resuming L2 (Algorithm 1, line 14).
    pub const ENTRY_FIELDS: [VmcsField; 10] = [
        VmcsField::GuestRip,
        VmcsField::GuestRsp,
        VmcsField::GuestRflags,
        VmcsField::GuestCr0,
        VmcsField::GuestCr3,
        VmcsField::GuestCr4,
        VmcsField::GuestEfer,
        VmcsField::GuestIntrState,
        VmcsField::VmEntryIntrInfo,
        VmcsField::VmEntryIntrErrCode,
    ];

    /// The eight exit-information fields L0 writes when injecting a
    /// reflected trap into vmcs12 (Algorithm 1, line 5).
    pub const INJECT_FIELDS: [VmcsField; 8] = [
        VmcsField::ExitReason,
        VmcsField::ExitQualification,
        VmcsField::GuestPhysAddr,
        VmcsField::GuestLinearAddr,
        VmcsField::ExitIntrInfo,
        VmcsField::ExitIntrErrCode,
        VmcsField::ExitInstrLen,
        VmcsField::IdtVectoringInfo,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, f) in VmcsField::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(VmcsField::COUNT, VmcsField::ALL.len());
    }

    #[test]
    fn exit_info_fields_are_ten() {
        // Matches the ~10 fields per transformation pass used to calibrate
        // Table 1 part 2 (see svt-sim's cost model tests).
        assert_eq!(VmcsField::exit_info_fields().count(), 10);
    }

    #[test]
    fn address_fields_never_shadowable() {
        for f in VmcsField::address_fields() {
            assert!(!f.shadow_readable(), "{}", f.name());
            assert!(!f.shadow_writable(), "{}", f.name());
        }
        assert_eq!(VmcsField::address_fields().count(), 5);
    }

    #[test]
    fn svt_fields_belong_to_svt_group() {
        for f in VmcsField::SVT_FIELDS {
            assert_eq!(f.group(), FieldGroup::Svt);
            assert!(!f.shadow_readable());
        }
    }

    #[test]
    fn shadow_writable_implies_readable() {
        for &f in VmcsField::ALL {
            if f.shadow_writable() {
                assert!(f.shadow_readable(), "{}", f.name());
            }
        }
    }

    #[test]
    fn names_match_variants() {
        assert_eq!(VmcsField::GuestRip.name(), "GuestRip");
        assert_eq!(VmcsField::SvtNested.name(), "SvtNested");
    }

    #[test]
    fn guest_fields_cover_rip_and_control_registers() {
        let guest: Vec<_> = VmcsField::guest_fields().collect();
        assert!(guest.contains(&VmcsField::GuestRip));
        assert!(guest.contains(&VmcsField::GuestCr3));
        assert_eq!(guest.len(), 18);
    }
}

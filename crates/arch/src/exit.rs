//! VM-exit reasons.
//!
//! Every trap the simulated virtualization hardware can raise, with the
//! encode/decode path hypervisors use: the hardware (or L0, when
//! reflecting) writes `(code, qualification)` into the exit-information
//! VMCS fields, and the handling hypervisor decodes them back. Round-
//! tripping through the encoded form keeps the simulated L1 honest — it
//! only ever learns what a real hypervisor could read from its VMCS.

use std::fmt;

use svt_mem::Gpa;

use crate::fields::VmcsField;

/// Why a VM trapped into its hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// External interrupt arrived while the guest ran.
    ExternalInterrupt {
        /// Interrupt vector.
        vector: u8,
    },
    /// Guest executed `cpuid` (unconditionally exiting).
    Cpuid,
    /// Guest executed `hlt`.
    Hlt,
    /// Guest executed `vmcall` (hypercall).
    Vmcall {
        /// Hypercall number (from RAX).
        nr: u64,
    },
    /// Port I/O instruction.
    IoInstruction {
        /// Port number.
        port: u16,
        /// Whether it was an OUT (write).
        write: bool,
    },
    /// EPT permission violation at a guest-physical address.
    EptViolation {
        /// Faulting guest-physical address.
        gpa: Gpa,
        /// Whether the access was a write.
        write: bool,
    },
    /// EPT misconfiguration — the MMIO-emulation fast path for virtio
    /// device accesses (the `EPT_MISCONFIG` handler the paper profiles).
    EptMisconfig {
        /// Accessed guest-physical address.
        gpa: Gpa,
    },
    /// `rdmsr` of a trapped MSR.
    MsrRead {
        /// MSR index.
        msr: u32,
    },
    /// `wrmsr` of a trapped MSR (e.g. the TSC-deadline timer the paper's
    /// `MSR_WRITE` profile is dominated by).
    MsrWrite {
        /// MSR index.
        msr: u32,
    },
    /// Guest hypervisor executed `vmptrld`.
    Vmptrld {
        /// Descriptor address in the guest's physical space.
        region: Gpa,
    },
    /// Guest hypervisor executed `vmclear`.
    Vmclear {
        /// Descriptor address in the guest's physical space.
        region: Gpa,
    },
    /// Guest hypervisor executed `vmlaunch`.
    Vmlaunch,
    /// Guest hypervisor executed `vmresume`.
    Vmresume,
    /// Guest hypervisor `vmread` of an unshadowed field.
    Vmread {
        /// Field being read.
        field: VmcsField,
    },
    /// Guest hypervisor `vmwrite` of an unshadowed field.
    Vmwrite {
        /// Field being written.
        field: VmcsField,
    },
    /// Guest hypervisor executed `invept`.
    Invept,
    /// The interrupt-window exit taken right after an event injection
    /// (nested interrupt delivery takes one of these on the first entry).
    InterruptWindow,
    /// VMX preemption timer expired.
    PreemptionTimer,
    /// A `ctxtld`/`ctxtst` faulted (invalid target) and must be emulated.
    SvtFault,
    /// SW-SVt synthetic trap: L0 asks L1's main vCPU to service pending
    /// interrupts while its SVt-thread holds a command (paper § 5.3).
    SvtBlocked,
    /// RISC-V virtual-instruction trap (`scause` 22): the guest executed
    /// an instruction the H-extension forwards to its hypervisor for
    /// emulation — the backend's analogue of an unconditionally-exiting
    /// `cpuid`.
    VirtInstr,
    /// RISC-V SBI call (`ecall` from VS-mode, `scause` 10): the
    /// H-extension's hypercall, analogue of `vmcall`.
    SbiCall {
        /// SBI function number (from `a7`/`a6`).
        nr: u64,
    },
}

impl ExitReason {
    /// Short stable tag for profiling (matches the KVM-style names used in
    /// the paper's § 6.2/6.3 profiles).
    pub fn tag(self) -> &'static str {
        match self {
            ExitReason::ExternalInterrupt { .. } => "EXTERNAL_INTERRUPT",
            ExitReason::Cpuid => "CPUID",
            ExitReason::Hlt => "HLT",
            ExitReason::Vmcall { .. } => "VMCALL",
            ExitReason::IoInstruction { .. } => "IO_INSTRUCTION",
            ExitReason::EptViolation { .. } => "EPT_VIOLATION",
            ExitReason::EptMisconfig { .. } => "EPT_MISCONFIG",
            ExitReason::MsrRead { .. } => "MSR_READ",
            ExitReason::MsrWrite { .. } => "MSR_WRITE",
            ExitReason::Vmptrld { .. } => "VMPTRLD",
            ExitReason::Vmclear { .. } => "VMCLEAR",
            ExitReason::Vmlaunch => "VMLAUNCH",
            ExitReason::Vmresume => "VMRESUME",
            ExitReason::Vmread { .. } => "VMREAD",
            ExitReason::Vmwrite { .. } => "VMWRITE",
            ExitReason::Invept => "INVEPT",
            ExitReason::InterruptWindow => "INTERRUPT_WINDOW",
            ExitReason::PreemptionTimer => "PREEMPTION_TIMER",
            ExitReason::SvtFault => "SVT_FAULT",
            ExitReason::SvtBlocked => "SVT_BLOCKED",
            ExitReason::VirtInstr => "VIRT_INSTR",
            ExitReason::SbiCall { .. } => "SBI_CALL",
        }
    }

    /// Encodes into `(basic code, qualification)` suitable for the
    /// `ExitReason`/`ExitQualification` VMCS fields.
    pub fn encode(self) -> (u64, u64) {
        match self {
            ExitReason::ExternalInterrupt { vector } => (1, vector as u64),
            ExitReason::Cpuid => (10, 0),
            ExitReason::Hlt => (12, 0),
            ExitReason::Vmcall { nr } => (18, nr),
            ExitReason::IoInstruction { port, write } => (30, (port as u64) << 1 | write as u64),
            ExitReason::EptViolation { gpa, write } => (48, gpa.0 << 1 | write as u64),
            ExitReason::EptMisconfig { gpa } => (49, gpa.0),
            ExitReason::MsrRead { msr } => (31, msr as u64),
            ExitReason::MsrWrite { msr } => (32, msr as u64),
            ExitReason::Vmptrld { region } => (21, region.0),
            ExitReason::Vmclear { region } => (19, region.0),
            ExitReason::Vmlaunch => (20, 0),
            ExitReason::Vmresume => (24, 0),
            ExitReason::Vmread { field } => (23, field.index() as u64),
            ExitReason::Vmwrite { field } => (25, field.index() as u64),
            ExitReason::Invept => (50, 0),
            ExitReason::InterruptWindow => (7, 0),
            ExitReason::PreemptionTimer => (52, 0),
            ExitReason::SvtFault => (60, 0),
            ExitReason::SvtBlocked => (61, 0),
            ExitReason::VirtInstr => (62, 0),
            ExitReason::SbiCall { nr } => (63, nr),
        }
    }

    /// Decodes from `(basic code, qualification)`. Returns `None` for
    /// unknown codes.
    pub fn decode(code: u64, qual: u64) -> Option<ExitReason> {
        Some(match code {
            1 => ExitReason::ExternalInterrupt { vector: qual as u8 },
            10 => ExitReason::Cpuid,
            12 => ExitReason::Hlt,
            18 => ExitReason::Vmcall { nr: qual },
            30 => ExitReason::IoInstruction {
                port: (qual >> 1) as u16,
                write: qual & 1 != 0,
            },
            48 => ExitReason::EptViolation {
                gpa: Gpa(qual >> 1),
                write: qual & 1 != 0,
            },
            49 => ExitReason::EptMisconfig { gpa: Gpa(qual) },
            31 => ExitReason::MsrRead { msr: qual as u32 },
            32 => ExitReason::MsrWrite { msr: qual as u32 },
            21 => ExitReason::Vmptrld { region: Gpa(qual) },
            19 => ExitReason::Vmclear { region: Gpa(qual) },
            20 => ExitReason::Vmlaunch,
            24 => ExitReason::Vmresume,
            23 => ExitReason::Vmread {
                field: *VmcsField::ALL.get(qual as usize)?,
            },
            25 => ExitReason::Vmwrite {
                field: *VmcsField::ALL.get(qual as usize)?,
            },
            50 => ExitReason::Invept,
            7 => ExitReason::InterruptWindow,
            52 => ExitReason::PreemptionTimer,
            60 => ExitReason::SvtFault,
            61 => ExitReason::SvtBlocked,
            62 => ExitReason::VirtInstr,
            63 => ExitReason::SbiCall { nr: qual },
            _ => return None,
        })
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ExitReason> {
        vec![
            ExitReason::ExternalInterrupt { vector: 0xec },
            ExitReason::Cpuid,
            ExitReason::Hlt,
            ExitReason::Vmcall { nr: 7 },
            ExitReason::IoInstruction {
                port: 0x3f8,
                write: true,
            },
            ExitReason::IoInstruction {
                port: 0x3f8,
                write: false,
            },
            ExitReason::EptViolation {
                gpa: Gpa(0x1000),
                write: true,
            },
            ExitReason::EptMisconfig {
                gpa: Gpa(0xfee0_0000),
            },
            ExitReason::MsrRead { msr: 0x6e0 },
            ExitReason::MsrWrite { msr: 0x6e0 },
            ExitReason::Vmptrld {
                region: Gpa(0x8000),
            },
            ExitReason::Vmclear {
                region: Gpa(0x8000),
            },
            ExitReason::Vmlaunch,
            ExitReason::Vmresume,
            ExitReason::Vmread {
                field: VmcsField::GuestRip,
            },
            ExitReason::Vmwrite {
                field: VmcsField::EptPointer,
            },
            ExitReason::Invept,
            ExitReason::InterruptWindow,
            ExitReason::PreemptionTimer,
            ExitReason::SvtFault,
            ExitReason::SvtBlocked,
            ExitReason::VirtInstr,
            ExitReason::SbiCall { nr: 0x10 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for r in all_variants() {
            let (code, qual) = r.encode();
            assert_eq!(ExitReason::decode(code, qual), Some(r), "{r}");
        }
    }

    #[test]
    fn unknown_code_decodes_to_none() {
        assert_eq!(ExitReason::decode(9999, 0), None);
        // Vmread with out-of-range field index.
        assert_eq!(ExitReason::decode(23, 10_000), None);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<u64> = all_variants().iter().map(|r| r.encode().0).collect();
        codes.sort_unstable();
        codes.dedup();
        // IoInstruction appears twice in the variant list (read and write).
        assert_eq!(codes.len(), all_variants().len() - 1);
    }

    #[test]
    fn tags_match_paper_profile_names() {
        assert_eq!(
            ExitReason::EptMisconfig { gpa: Gpa(0) }.tag(),
            "EPT_MISCONFIG"
        );
        assert_eq!(ExitReason::MsrWrite { msr: 0x6e0 }.tag(), "MSR_WRITE");
    }
}

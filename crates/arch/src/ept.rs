//! Extended page tables.
//!
//! An [`Ept`] maps page frames of one physical address space onto another:
//! `ept01` maps L1-guest-physical to host-physical, `ept12` (built by L1)
//! maps L2-guest-physical to L1-guest-physical, and L0 composes the two
//! into the `ept02` it actually runs L2 on — the "EPT on EPT" machinery
//! nested virtualization requires. Pages can also be marked as MMIO
//! (deliberately misconfigured) so device accesses raise
//! `EPT_MISCONFIG` exits for emulation, as KVM does for virtio BARs.

use std::collections::BTreeMap;

use svt_mem::{Gpa, PAGE_SIZE};

/// Page access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// Page permissions (read/write/execute bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptPerms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl EptPerms {
    /// Full RWX permissions.
    pub const RWX: EptPerms = EptPerms {
        r: true,
        w: true,
        x: true,
    };
    /// Read+execute (write-protected).
    pub const RX: EptPerms = EptPerms {
        r: true,
        w: false,
        x: true,
    };
    /// Read-only data.
    pub const R: EptPerms = EptPerms {
        r: true,
        w: false,
        x: false,
    };

    /// Whether these permissions allow `access`.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.r,
            Access::Write => self.w,
            Access::Exec => self.x,
        }
    }

    /// Intersection of two permission sets (used when composing EPTs).
    pub fn intersect(self, other: EptPerms) -> EptPerms {
        EptPerms {
            r: self.r && other.r,
            w: self.w && other.w,
            x: self.x && other.x,
        }
    }
}

/// A translation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptFault {
    /// Missing mapping or insufficient permission.
    Violation {
        /// Faulting guest-physical address.
        gpa: Gpa,
        /// The access that faulted.
        access: Access,
    },
    /// The page is marked as an MMIO (misconfigured) region.
    Misconfig {
        /// Accessed guest-physical address.
        gpa: Gpa,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Mapped { target_page: u64, perms: EptPerms },
    Mmio,
}

/// One extended-page-table hierarchy (page-granular).
///
/// # Examples
///
/// ```
/// use svt_arch::{Access, Ept, EptPerms};
/// use svt_mem::{Gpa, PAGE_SIZE};
///
/// let mut ept = Ept::new();
/// ept.map_page(0, 42, EptPerms::RWX);
/// let hpa = ept.translate(Gpa(0x10), Access::Read).unwrap();
/// assert_eq!(hpa.0, 42 * PAGE_SIZE + 0x10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ept {
    entries: BTreeMap<u64, Entry>,
    generation: u64,
}

impl Ept {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Ept::default()
    }

    /// Maps guest page `gpa_page` to target page `target_page`.
    pub fn map_page(&mut self, gpa_page: u64, target_page: u64, perms: EptPerms) {
        self.entries
            .insert(gpa_page, Entry::Mapped { target_page, perms });
    }

    /// Identity-maps `n` pages starting at page `start`.
    pub fn identity_map(&mut self, start: u64, n: u64, perms: EptPerms) {
        for p in start..start + n {
            self.map_page(p, p, perms);
        }
    }

    /// Marks a page as MMIO: any access raises [`EptFault::Misconfig`],
    /// the device-emulation fast path.
    pub fn mark_mmio(&mut self, gpa_page: u64) {
        self.entries.insert(gpa_page, Entry::Mmio);
    }

    /// Removes a mapping.
    pub fn unmap(&mut self, gpa_page: u64) {
        self.entries.remove(&gpa_page);
    }

    /// Drops every mapping (`invept` single-context flush).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
        self.generation += 1;
    }

    /// Monotonic generation counter bumped by invalidations; composed EPTs
    /// record the source generations they were built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of mapped (or MMIO) pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Translates an address in the source space to the target space.
    ///
    /// # Errors
    ///
    /// [`EptFault::Violation`] for unmapped pages or permission failures;
    /// [`EptFault::Misconfig`] for MMIO pages.
    pub fn translate(&self, gpa: Gpa, access: Access) -> Result<Gpa, EptFault> {
        match self.entries.get(&gpa.page()) {
            None => Err(EptFault::Violation { gpa, access }),
            Some(Entry::Mmio) => Err(EptFault::Misconfig { gpa }),
            Some(Entry::Mapped { target_page, perms }) => {
                if perms.allows(access) {
                    Ok(Gpa(target_page * PAGE_SIZE + gpa.offset()))
                } else {
                    Err(EptFault::Violation { gpa, access })
                }
            }
        }
    }

    /// Composes `self` (inner: L2-phys → L1-phys) with `outer`
    /// (L1-phys → host-phys) into the flattened table L0 runs L2 on
    /// (L2-phys → host-phys).
    ///
    /// * Pages the inner table marks MMIO stay MMIO (L1 emulates them).
    /// * Pages whose L1-physical target is MMIO in the outer table become
    ///   MMIO (L0 emulates them).
    /// * Pages whose L1-physical target is unmapped in the outer table are
    ///   left unmapped — they fault as violations on access and L0 fills
    ///   them lazily, like real shadow paging.
    /// * Permissions intersect.
    pub fn compose(&self, outer: &Ept) -> Ept {
        let mut out = Ept::new();
        for (&g2_page, entry) in &self.entries {
            match entry {
                Entry::Mmio => out.mark_mmio(g2_page),
                Entry::Mapped { target_page, perms } => match outer.entries.get(target_page) {
                    Some(Entry::Mmio) => out.mark_mmio(g2_page),
                    Some(Entry::Mapped {
                        target_page: hpa_page,
                        perms: outer_perms,
                    }) => out.map_page(g2_page, *hpa_page, perms.intersect(*outer_perms)),
                    None => {}
                },
            }
        }
        out
    }

    /// Serializes the table for `svt_sim::snapshot`. `BTreeMap` iteration
    /// is already sorted, so identical tables serialize identically.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.u64(self.generation);
        w.usize(self.entries.len());
        for (&page, entry) in &self.entries {
            w.u64(page);
            match entry {
                Entry::Mmio => w.u8(0),
                Entry::Mapped { target_page, perms } => {
                    w.u8(1);
                    w.u64(*target_page);
                    w.u8((perms.r as u8) | (perms.w as u8) << 1 | (perms.x as u8) << 2);
                }
            }
        }
    }

    /// Restores state written by [`Ept::snap_save`].
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation or a malformed entry tag.
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        self.generation = r.u64()?;
        let n = r.usize()?;
        self.entries.clear();
        for _ in 0..n {
            let page = r.u64()?;
            let entry = match r.u8()? {
                0 => Entry::Mmio,
                1 => {
                    let target_page = r.u64()?;
                    let bits = r.u8()?;
                    Entry::Mapped {
                        target_page,
                        perms: EptPerms {
                            r: bits & 1 != 0,
                            w: bits & 2 != 0,
                            x: bits & 4 != 0,
                        },
                    }
                }
                b => {
                    return Err(svt_sim::SnapError::BadValue {
                        what: "EPT entry tag",
                        got: b as u64,
                    })
                }
            };
            self.entries.insert(page, entry);
        }
        Ok(())
    }

    /// Folds generation and every entry into a fingerprint.
    pub fn snap_fingerprint(&self, fp: &mut svt_sim::snapshot::Fingerprint) {
        fp.fold(self.generation);
        fp.fold(self.entries.len() as u64);
        for (&page, entry) in &self.entries {
            fp.fold(page);
            match entry {
                Entry::Mmio => {
                    fp.fold(u64::MAX);
                }
                Entry::Mapped { target_page, perms } => {
                    fp.fold(*target_page);
                    fp.fold(((perms.r as u64) | (perms.w as u64) << 1 | (perms.x as u64) << 2) + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_maps_offset() {
        let mut e = Ept::new();
        e.map_page(3, 7, EptPerms::RWX);
        let t = e.translate(Gpa(3 * PAGE_SIZE + 99), Access::Write).unwrap();
        assert_eq!(t, Gpa(7 * PAGE_SIZE + 99));
    }

    #[test]
    fn unmapped_page_violates() {
        let e = Ept::new();
        assert_eq!(
            e.translate(Gpa(0), Access::Read),
            Err(EptFault::Violation {
                gpa: Gpa(0),
                access: Access::Read
            })
        );
    }

    #[test]
    fn permissions_enforced() {
        let mut e = Ept::new();
        e.map_page(0, 0, EptPerms::RX);
        assert!(e.translate(Gpa(0), Access::Read).is_ok());
        assert!(e.translate(Gpa(0), Access::Exec).is_ok());
        assert!(matches!(
            e.translate(Gpa(0), Access::Write),
            Err(EptFault::Violation { .. })
        ));
    }

    #[test]
    fn mmio_pages_misconfig() {
        let mut e = Ept::new();
        e.mark_mmio(16);
        assert_eq!(
            e.translate(Gpa(16 * PAGE_SIZE + 4), Access::Write),
            Err(EptFault::Misconfig {
                gpa: Gpa(16 * PAGE_SIZE + 4)
            })
        );
    }

    #[test]
    fn identity_map_covers_range() {
        let mut e = Ept::new();
        e.identity_map(10, 5, EptPerms::RWX);
        assert_eq!(e.len(), 5);
        assert!(e.translate(Gpa(14 * PAGE_SIZE), Access::Read).is_ok());
        assert!(e.translate(Gpa(15 * PAGE_SIZE), Access::Read).is_err());
    }

    #[test]
    fn compose_flattens_two_levels() {
        // ept12: L2 page 0 -> L1 page 100; ept01: L1 page 100 -> host 555.
        let mut ept12 = Ept::new();
        ept12.map_page(0, 100, EptPerms::RWX);
        let mut ept01 = Ept::new();
        ept01.map_page(100, 555, EptPerms::RWX);
        let ept02 = ept12.compose(&ept01);
        assert_eq!(
            ept02.translate(Gpa(5), Access::Read).unwrap(),
            Gpa(555 * PAGE_SIZE + 5)
        );
    }

    #[test]
    fn compose_preserves_mmio_of_both_levels() {
        let mut ept12 = Ept::new();
        ept12.mark_mmio(1); // L1's virtio device for L2
        ept12.map_page(2, 200, EptPerms::RWX);
        let mut ept01 = Ept::new();
        ept01.mark_mmio(200); // L0's device behind that page
        let ept02 = ept12.compose(&ept01);
        assert!(matches!(
            ept02.translate(Gpa(PAGE_SIZE), Access::Read),
            Err(EptFault::Misconfig { .. })
        ));
        assert!(matches!(
            ept02.translate(Gpa(2 * PAGE_SIZE), Access::Read),
            Err(EptFault::Misconfig { .. })
        ));
    }

    #[test]
    fn compose_intersects_permissions() {
        let mut ept12 = Ept::new();
        ept12.map_page(0, 10, EptPerms::RWX);
        let mut ept01 = Ept::new();
        ept01.map_page(10, 20, EptPerms::RX);
        let ept02 = ept12.compose(&ept01);
        assert!(ept02.translate(Gpa(0), Access::Read).is_ok());
        assert!(ept02.translate(Gpa(0), Access::Write).is_err());
    }

    #[test]
    fn compose_skips_unbacked_pages() {
        let mut ept12 = Ept::new();
        ept12.map_page(0, 100, EptPerms::RWX);
        let ept01 = Ept::new();
        let ept02 = ept12.compose(&ept01);
        assert!(ept02.is_empty());
    }

    #[test]
    fn invalidate_bumps_generation() {
        let mut e = Ept::new();
        e.map_page(0, 0, EptPerms::RWX);
        let g = e.generation();
        e.invalidate_all();
        assert!(e.is_empty());
        assert_eq!(e.generation(), g + 1);
    }

    #[test]
    fn remap_overwrites() {
        let mut e = Ept::new();
        e.map_page(0, 1, EptPerms::RWX);
        e.map_page(0, 2, EptPerms::RWX);
        assert_eq!(
            e.translate(Gpa(0), Access::Read).unwrap(),
            Gpa(2 * PAGE_SIZE)
        );
        e.unmap(0);
        assert!(e.translate(Gpa(0), Access::Read).is_err());
    }
}

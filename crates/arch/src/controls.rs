//! Execution controls: which guest operations trap.
//!
//! Models the pin-based/processor-based control knobs and the MSR bitmap:
//! the policy a hypervisor programs to decide which of its guest's
//! operations cause VM exits. In nested virtualization L0 merges its own
//! policy with L1's when building vmcs02 ("L0 configures vmcs02 to ensure
//! access to these resources trigger a VM trap, regardless of the
//! configuration set by L1", § 2.1).

use std::collections::BTreeSet;

use crate::fields::VmcsField;
use crate::vmcs::Vmcs;

/// Bit positions inside the `ProcBasedControls` field.
mod bits {
    pub const EXT_INTR_EXITING: u64 = 1 << 0;
    pub const HLT_EXITING: u64 = 1 << 7;
    pub const USE_MSR_BITMAP: u64 = 1 << 28;
    pub const SHADOW_VMCS: u64 = 1 << 14;
    pub const PREEMPTION_TIMER: u64 = 1 << 6;
}

/// Trap policy for one guest.
///
/// # Examples
///
/// ```
/// use svt_arch::ExecPolicy;
///
/// let mut p = ExecPolicy::kvm_default();
/// assert!(p.msr_exits(svt_arch::MSR_TSC_DEADLINE));
/// p.pass_through_msr(svt_arch::MSR_TSC_DEADLINE);
/// assert!(!p.msr_exits(svt_arch::MSR_TSC_DEADLINE));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPolicy {
    /// External interrupts cause VM exits.
    pub external_interrupt_exiting: bool,
    /// `hlt` causes VM exits.
    pub hlt_exiting: bool,
    /// Whether the MSR bitmap is consulted (false ⇒ every MSR access
    /// exits).
    pub use_msr_bitmap: bool,
    /// MSRs that exit *despite* the bitmap (trapped set).
    trapped_msrs: BTreeSet<u32>,
    /// Hardware VMCS shadowing enabled for this guest's vmread/vmwrite.
    pub shadow_vmcs: bool,
    /// VMX preemption timer armed.
    pub preemption_timer: bool,
}

impl ExecPolicy {
    /// The policy KVM programs for a regular guest: interrupts and `hlt`
    /// exit, MSR bitmap passes most MSRs through but traps the timer and
    /// APIC MSRs, shadowing available.
    pub fn kvm_default() -> Self {
        let mut trapped = BTreeSet::new();
        trapped.insert(crate::apic::MSR_TSC_DEADLINE);
        trapped.insert(crate::apic::MSR_APIC_BASE);
        trapped.insert(crate::apic::MSR_X2APIC_ICR);
        trapped.insert(crate::apic::MSR_X2APIC_EOI);
        ExecPolicy {
            external_interrupt_exiting: true,
            hlt_exiting: true,
            use_msr_bitmap: true,
            trapped_msrs: trapped,
            shadow_vmcs: true,
            preemption_timer: false,
        }
    }

    /// Whether access to `msr` causes a VM exit under this policy.
    pub fn msr_exits(&self, msr: u32) -> bool {
        if !self.use_msr_bitmap {
            return true;
        }
        self.trapped_msrs.contains(&msr)
    }

    /// Adds `msr` to the trapped set.
    pub fn trap_msr(&mut self, msr: u32) {
        self.trapped_msrs.insert(msr);
    }

    /// Removes `msr` from the trapped set (pass-through).
    pub fn pass_through_msr(&mut self, msr: u32) {
        self.trapped_msrs.remove(&msr);
    }

    /// The trapped MSR set.
    pub fn trapped_msrs(&self) -> impl Iterator<Item = u32> + '_ {
        self.trapped_msrs.iter().copied()
    }

    /// Merges L1's policy for L2 with L0's own requirements, producing the
    /// policy for vmcs02: anything either level wants trapped is trapped.
    pub fn merge_for_nested(&self, l1_policy: &ExecPolicy) -> ExecPolicy {
        ExecPolicy {
            external_interrupt_exiting: self.external_interrupt_exiting
                || l1_policy.external_interrupt_exiting,
            hlt_exiting: self.hlt_exiting || l1_policy.hlt_exiting,
            use_msr_bitmap: self.use_msr_bitmap && l1_policy.use_msr_bitmap,
            trapped_msrs: self
                .trapped_msrs
                .union(&l1_policy.trapped_msrs)
                .copied()
                .collect(),
            // L2 never gets real VMX hardware: shadowing applies to L1 only.
            shadow_vmcs: false,
            preemption_timer: self.preemption_timer || l1_policy.preemption_timer,
        }
    }

    /// Serializes the boolean knobs into the `ProcBasedControls` field of
    /// a VMCS (the MSR set lives in the memory-resident bitmap, modeled as
    /// hypervisor state).
    pub fn write_to(&self, vmcs: &mut Vmcs) {
        let mut v = 0u64;
        if self.external_interrupt_exiting {
            v |= bits::EXT_INTR_EXITING;
        }
        if self.hlt_exiting {
            v |= bits::HLT_EXITING;
        }
        if self.use_msr_bitmap {
            v |= bits::USE_MSR_BITMAP;
        }
        if self.shadow_vmcs {
            v |= bits::SHADOW_VMCS;
        }
        if self.preemption_timer {
            v |= bits::PREEMPTION_TIMER;
        }
        vmcs.write(VmcsField::ProcBasedControls, v);
    }

    /// Restores the boolean knobs from a VMCS field, keeping the current
    /// trapped-MSR set.
    pub fn read_from(&mut self, vmcs: &Vmcs) {
        let v = vmcs.read(VmcsField::ProcBasedControls);
        self.external_interrupt_exiting = v & bits::EXT_INTR_EXITING != 0;
        self.hlt_exiting = v & bits::HLT_EXITING != 0;
        self.use_msr_bitmap = v & bits::USE_MSR_BITMAP != 0;
        self.shadow_vmcs = v & bits::SHADOW_VMCS != 0;
        self.preemption_timer = v & bits::PREEMPTION_TIMER != 0;
    }

    /// Serializes the full policy (knobs plus trapped-MSR set) for
    /// `svt_sim::snapshot`. The `BTreeSet` iterates sorted, so identical
    /// policies serialize identically.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.bool(self.external_interrupt_exiting);
        w.bool(self.hlt_exiting);
        w.bool(self.use_msr_bitmap);
        w.bool(self.shadow_vmcs);
        w.bool(self.preemption_timer);
        w.usize(self.trapped_msrs.len());
        for msr in &self.trapped_msrs {
            w.u32(*msr);
        }
    }

    /// Restores state written by [`ExecPolicy::snap_save`].
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation.
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        self.external_interrupt_exiting = r.bool()?;
        self.hlt_exiting = r.bool()?;
        self.use_msr_bitmap = r.bool()?;
        self.shadow_vmcs = r.bool()?;
        self.preemption_timer = r.bool()?;
        let n = r.usize()?;
        self.trapped_msrs.clear();
        for _ in 0..n {
            self.trapped_msrs.insert(r.u32()?);
        }
        Ok(())
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::kvm_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apic::{MSR_EFER, MSR_TSC_DEADLINE};
    use crate::vmcs::VmcsRole;
    use svt_mem::Gpa;

    #[test]
    fn default_traps_timer_not_efer() {
        let p = ExecPolicy::kvm_default();
        assert!(p.msr_exits(MSR_TSC_DEADLINE));
        assert!(!p.msr_exits(MSR_EFER));
    }

    #[test]
    fn disabling_bitmap_traps_everything() {
        let mut p = ExecPolicy::kvm_default();
        p.use_msr_bitmap = false;
        assert!(p.msr_exits(MSR_EFER));
        assert!(p.msr_exits(0x1234));
    }

    #[test]
    fn trap_and_pass_through() {
        let mut p = ExecPolicy::kvm_default();
        p.trap_msr(0x999);
        assert!(p.msr_exits(0x999));
        p.pass_through_msr(0x999);
        assert!(!p.msr_exits(0x999));
    }

    #[test]
    fn nested_merge_is_union_of_traps() {
        let mut l0 = ExecPolicy::kvm_default();
        l0.trap_msr(0x10);
        let mut l1 = ExecPolicy::kvm_default();
        l1.trap_msr(0x20);
        let merged = l0.merge_for_nested(&l1);
        assert!(merged.msr_exits(0x10));
        assert!(merged.msr_exits(0x20));
        assert!(merged.msr_exits(MSR_TSC_DEADLINE));
        assert!(!merged.shadow_vmcs, "L2 gets no VMX hardware");
    }

    #[test]
    fn nested_merge_respects_l0_override() {
        // Even if L1 passes the timer MSR through, L0's trap wins — the
        // paper's example of L0 virtualizing the timestamp resources.
        let l0 = ExecPolicy::kvm_default();
        let mut l1 = ExecPolicy::kvm_default();
        l1.pass_through_msr(MSR_TSC_DEADLINE);
        let merged = l0.merge_for_nested(&l1);
        assert!(merged.msr_exits(MSR_TSC_DEADLINE));
    }

    #[test]
    fn vmcs_round_trip() {
        let mut p = ExecPolicy::kvm_default();
        p.hlt_exiting = false;
        p.preemption_timer = true;
        let mut vmcs = Vmcs::new(VmcsRole::Host { guest_level: 1 }, Gpa(0));
        p.write_to(&mut vmcs);
        let mut q = ExecPolicy::kvm_default();
        q.read_from(&vmcs);
        assert_eq!(p, q);
    }
}

//! RISC-V H-extension backend.
//!
//! Maps the ISA-neutral layer onto the hypervisor extension described in
//! the RISC-V privileged specification and modeled on the CVA6
//! implementation ("CVA6 RISC-V Virtualization", PAPERS.md):
//!
//! * the **hs/vs CSR file** plays the VMCS role — [`crate::Vmcs`] holds
//!   the same neutral fields, but on this backend there is *no* VMCS
//!   shadowing hardware (CVA6 has no shadow-CSR analogue), so every
//!   guest-hypervisor access to a vs-CSR of its nested guest traps to L0
//!   ([`super::ArchId::default_shadowing`] is `false`);
//! * **`hgatp`/`vsatp` two-stage translation** plays the EPT role:
//!   [`crate::Ept`] models the G-stage table, guest-page faults
//!   (`scause` 20/21/23) are the [`crate::ExitReason::EptViolation`]
//!   analogue and MMIO regions trap like misconfigured G-stage entries;
//! * **SBI calls** (`ecall` from VS-mode, `scause` 10) and
//!   **virtual-instruction traps** (`scause` 22) are the hypercall and
//!   forced-emulation exits ([`crate::ExitReason::SbiCall`],
//!   [`crate::ExitReason::VirtInstr`]);
//! * the **IMSIC interrupt file** plays the x2APIC role: the neutral
//!   ICR/EOI register indices map onto `seteipnum`/`vstopei` and
//!   `vstimecmp` (see [`crate::MSR_X2APIC_ICR`] and friends).
//!
//! Exit reasons encode into `(scause, stval)`-shaped pairs where a real
//! cause code exists; traps that only exist in this simulation (the
//! SRET-mediated nested entry/exit protocol, SVt synthetics) use
//! synthetic codes ≥ 24, above the architected exception range.

use svt_mem::Gpa;

use crate::exit::ExitReason;
use crate::fields::VmcsField;

/// Interrupt bit of `scause`: set for interrupt causes, clear for
/// exceptions (bit 63 on RV64).
pub const SCAUSE_INTERRUPT: u64 = 1 << 63;

/// `scause` for a supervisor external interrupt (code 9), the cause the
/// IMSIC raises when a guest interrupt file delivers.
pub const SCAUSE_EXTERNAL: u64 = SCAUSE_INTERRUPT | 9;

/// `scause` for an environment call from VS-mode (SBI call), code 10.
pub const SCAUSE_SBI_CALL: u64 = 10;

/// `scause` for a load guest-page fault, code 21.
pub const SCAUSE_LOAD_GPF: u64 = 21;

/// `scause` for a virtual-instruction trap, code 22.
pub const SCAUSE_VIRT_INSTR: u64 = 22;

/// `scause` for a store/AMO guest-page fault, code 23.
pub const SCAUSE_STORE_GPF: u64 = 23;

/// First synthetic cause code: simulation-only traps (nested-entry
/// protocol, port I/O, SVt synthetics) encode above the architected
/// exception range.
pub const SCAUSE_SYNTHETIC_BASE: u64 = 24;

/// Short stable tag for profiling on the RISC-V backend. Where a trap
/// has an architected name (WFI, guest-page fault, SBI call) the tag
/// uses it; SVt synthetics keep their ISA-neutral names so SVt metrics
/// compare across backends.
pub fn tag(reason: ExitReason) -> &'static str {
    match reason {
        ExitReason::ExternalInterrupt { .. } => "EXTERNAL_INTERRUPT",
        // `cpuid` has no RISC-V equivalent; if a neutral Cpuid reason
        // ever reaches this backend it reports as the virtual-instruction
        // trap that would have carried it.
        ExitReason::Cpuid | ExitReason::VirtInstr => "VIRT_INSTR",
        ExitReason::Hlt => "WFI",
        ExitReason::Vmcall { .. } | ExitReason::SbiCall { .. } => "SBI_CALL",
        ExitReason::IoInstruction { .. } => "IO_INSTRUCTION",
        ExitReason::EptViolation { .. } => "GUEST_PAGE_FAULT",
        ExitReason::EptMisconfig { .. } => "GPF_MMIO",
        ExitReason::MsrRead { .. } => "CSR_READ",
        ExitReason::MsrWrite { .. } => "CSR_WRITE",
        ExitReason::Vmptrld { .. } => "HCTX_LOAD",
        ExitReason::Vmclear { .. } => "HCTX_CLEAR",
        ExitReason::Vmlaunch => "SRET_ENTER",
        ExitReason::Vmresume => "SRET_RESUME",
        ExitReason::Vmread { .. } => "VS_CSR_READ",
        ExitReason::Vmwrite { .. } => "VS_CSR_WRITE",
        ExitReason::Invept => "HFENCE_GVMA",
        ExitReason::InterruptWindow => "INTERRUPT_WINDOW",
        ExitReason::PreemptionTimer => "STIMER",
        ExitReason::SvtFault => "SVT_FAULT",
        ExitReason::SvtBlocked => "SVT_BLOCKED",
    }
}

/// Encodes into an `(scause, stval)`-shaped pair for the exit-information
/// fields. Injective over all reasons: [`decode`] round-trips exactly.
pub fn encode(reason: ExitReason) -> (u64, u64) {
    match reason {
        ExitReason::ExternalInterrupt { vector } => (SCAUSE_EXTERNAL, vector as u64),
        ExitReason::VirtInstr => (SCAUSE_VIRT_INSTR, 0),
        // WFI traps as a virtual instruction; stval 1 distinguishes it
        // from the generic forced-emulation trap.
        ExitReason::Hlt => (SCAUSE_VIRT_INSTR, 1),
        ExitReason::Cpuid => (SCAUSE_VIRT_INSTR, 2),
        ExitReason::SbiCall { nr } => (SCAUSE_SBI_CALL, nr),
        ExitReason::EptViolation { gpa, write } => {
            if write {
                (SCAUSE_STORE_GPF, gpa.0)
            } else {
                (SCAUSE_LOAD_GPF, gpa.0)
            }
        }
        // Synthetic codes: traps with no architected scause.
        ExitReason::Vmcall { nr } => (24, nr),
        ExitReason::EptMisconfig { gpa } => (25, gpa.0),
        ExitReason::MsrRead { msr } => (26, msr as u64),
        ExitReason::MsrWrite { msr } => (27, msr as u64),
        ExitReason::IoInstruction { port, write } => (28, (port as u64) << 1 | write as u64),
        ExitReason::Vmptrld { region } => (29, region.0),
        ExitReason::Vmclear { region } => (30, region.0),
        ExitReason::Vmlaunch => (31, 0),
        ExitReason::Vmresume => (32, 0),
        ExitReason::Vmread { field } => (33, field.index() as u64),
        ExitReason::Vmwrite { field } => (34, field.index() as u64),
        ExitReason::Invept => (35, 0),
        ExitReason::InterruptWindow => (36, 0),
        ExitReason::PreemptionTimer => (37, 0),
        ExitReason::SvtFault => (60, 0),
        ExitReason::SvtBlocked => (61, 0),
    }
}

/// Decodes from an `(scause, stval)` pair. Returns `None` for unknown
/// cause codes.
pub fn decode(code: u64, qual: u64) -> Option<ExitReason> {
    Some(match code {
        SCAUSE_EXTERNAL => ExitReason::ExternalInterrupt { vector: qual as u8 },
        SCAUSE_VIRT_INSTR => match qual {
            0 => ExitReason::VirtInstr,
            1 => ExitReason::Hlt,
            2 => ExitReason::Cpuid,
            _ => return None,
        },
        SCAUSE_SBI_CALL => ExitReason::SbiCall { nr: qual },
        SCAUSE_LOAD_GPF => ExitReason::EptViolation {
            gpa: Gpa(qual),
            write: false,
        },
        SCAUSE_STORE_GPF => ExitReason::EptViolation {
            gpa: Gpa(qual),
            write: true,
        },
        24 => ExitReason::Vmcall { nr: qual },
        25 => ExitReason::EptMisconfig { gpa: Gpa(qual) },
        26 => ExitReason::MsrRead { msr: qual as u32 },
        27 => ExitReason::MsrWrite { msr: qual as u32 },
        28 => ExitReason::IoInstruction {
            port: (qual >> 1) as u16,
            write: qual & 1 != 0,
        },
        29 => ExitReason::Vmptrld { region: Gpa(qual) },
        30 => ExitReason::Vmclear { region: Gpa(qual) },
        31 => ExitReason::Vmlaunch,
        32 => ExitReason::Vmresume,
        33 => ExitReason::Vmread {
            field: *VmcsField::ALL.get(qual as usize)?,
        },
        34 => ExitReason::Vmwrite {
            field: *VmcsField::ALL.get(qual as usize)?,
        },
        35 => ExitReason::Invept,
        36 => ExitReason::InterruptWindow,
        37 => ExitReason::PreemptionTimer,
        60 => ExitReason::SvtFault,
        61 => ExitReason::SvtBlocked,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ExitReason> {
        vec![
            ExitReason::ExternalInterrupt { vector: 0xec },
            ExitReason::Cpuid,
            ExitReason::Hlt,
            ExitReason::Vmcall { nr: 7 },
            ExitReason::IoInstruction {
                port: 0x3f8,
                write: true,
            },
            ExitReason::EptViolation {
                gpa: Gpa(0x1000),
                write: true,
            },
            ExitReason::EptViolation {
                gpa: Gpa(0x1000),
                write: false,
            },
            ExitReason::EptMisconfig {
                gpa: Gpa(0xfee0_0000),
            },
            ExitReason::MsrRead { msr: 0x6e0 },
            ExitReason::MsrWrite { msr: 0x6e0 },
            ExitReason::Vmptrld {
                region: Gpa(0x8000),
            },
            ExitReason::Vmclear {
                region: Gpa(0x8000),
            },
            ExitReason::Vmlaunch,
            ExitReason::Vmresume,
            ExitReason::Vmread {
                field: VmcsField::GuestRip,
            },
            ExitReason::Vmwrite {
                field: VmcsField::EptPointer,
            },
            ExitReason::Invept,
            ExitReason::InterruptWindow,
            ExitReason::PreemptionTimer,
            ExitReason::SvtFault,
            ExitReason::SvtBlocked,
            ExitReason::VirtInstr,
            ExitReason::SbiCall { nr: 0x10 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for r in all_variants() {
            let (code, qual) = encode(r);
            assert_eq!(decode(code, qual), Some(r), "{r}");
        }
    }

    #[test]
    fn encodings_are_injective() {
        let mut pairs: Vec<(u64, u64)> = all_variants().iter().map(|&r| encode(r)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), all_variants().len());
    }

    #[test]
    fn unknown_cause_decodes_to_none() {
        assert_eq!(decode(9999, 0), None);
        assert_eq!(decode(SCAUSE_VIRT_INSTR, 99), None);
        assert_eq!(decode(33, 10_000), None);
    }

    #[test]
    fn architected_causes_match_the_spec() {
        assert_eq!(encode(ExitReason::SbiCall { nr: 1 }).0, 10);
        assert_eq!(encode(ExitReason::VirtInstr).0, 22);
        assert_eq!(
            encode(ExitReason::EptViolation {
                gpa: Gpa(0),
                write: false
            })
            .0,
            21
        );
        assert_eq!(
            encode(ExitReason::EptViolation {
                gpa: Gpa(0),
                write: true
            })
            .0,
            23
        );
        assert!(encode(ExitReason::ExternalInterrupt { vector: 0 }).0 & SCAUSE_INTERRUPT != 0);
    }

    #[test]
    fn svt_tags_are_backend_neutral() {
        // SVt metrics must compare across backends.
        assert_eq!(tag(ExitReason::SvtFault), ExitReason::SvtFault.tag());
        assert_eq!(tag(ExitReason::SvtBlocked), ExitReason::SvtBlocked.tag());
        // WFI and guest-page faults take their architected names.
        assert_eq!(tag(ExitReason::Hlt), "WFI");
        assert_eq!(
            tag(ExitReason::EptViolation {
                gpa: Gpa(0),
                write: false
            }),
            "GUEST_PAGE_FAULT"
        );
    }
}

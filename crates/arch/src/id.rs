//! Backend selection and dispatch.
//!
//! [`ArchId`] names one ISA backend and owns every decision that differs
//! between them: how exit reasons encode into the exit-information
//! fields, what they are called in profiles, which guest operations trap
//! with which reason, whether the hardware shadows VM-state accesses,
//! and which calibrated cost model applies. Everything else — the
//! [`crate::Vmcs`] state container, two-level translation, interrupt
//! delivery, execution-control policy, and all three reflection engines
//! built on top — is ISA-neutral and runs unmodified on any backend.

use svt_sim::CostModel;

use crate::exit::ExitReason;
use crate::riscv;

/// Which ISA backend a machine simulates.
///
/// The default is [`ArchId::X86`], which preserves the original VT-x
/// behavior bit-for-bit; every pre-existing entry point that does not
/// take an explicit arch keeps using it.
///
/// # Examples
///
/// ```
/// use svt_arch::{ArchId, ExitReason};
///
/// // The same neutral reason encodes differently per backend...
/// let hlt = ExitReason::Hlt;
/// assert_eq!(ArchId::X86.encode(hlt), (12, 0)); // VT-x basic exit code
/// assert_eq!(ArchId::Riscv.encode(hlt), (22, 1)); // scause VIRT_INSTR
/// // ...and each backend decodes its own encoding back.
/// for arch in ArchId::ALL {
///     let (code, qual) = arch.encode(hlt);
///     assert_eq!(arch.decode(code, qual), Some(hlt));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArchId {
    /// x86-64 with VT-x: VMCS shadowing, EPT, x2APIC. The original
    /// backend; all committed baselines are produced on it.
    #[default]
    X86,
    /// RISC-V with the hypervisor extension, modeled on CVA6: hs/vs CSR
    /// file, `hgatp` two-stage translation, SBI-call and
    /// virtual-instruction traps, IMSIC interrupt file. No VM-state
    /// shadowing hardware.
    Riscv,
}

impl ArchId {
    /// Both backends, in report order.
    pub const ALL: [ArchId; 2] = [ArchId::X86, ArchId::Riscv];

    /// Stable lowercase label used in CLI flags, report JSON and metric
    /// dimensions.
    pub fn label(self) -> &'static str {
        match self {
            ArchId::X86 => "x86",
            ArchId::Riscv => "riscv",
        }
    }

    /// Parses a CLI spelling. Accepts the canonical labels plus common
    /// aliases (`x86_64`, `rv64`).
    pub fn parse(s: &str) -> Option<ArchId> {
        match s {
            "x86" | "x86_64" | "vmx" => Some(ArchId::X86),
            "riscv" | "rv64" | "riscv64" => Some(ArchId::Riscv),
            _ => None,
        }
    }

    /// Whether the hardware shadows guest-hypervisor accesses to its
    /// nested guest's VM state. VT-x has shadow VMCS; CVA6's H-extension
    /// has no shadow-CSR analogue, so on RISC-V every such access traps
    /// to L0 — the property that makes trap elision (SVt) bite harder
    /// there.
    pub fn default_shadowing(self) -> bool {
        match self {
            ArchId::X86 => true,
            ArchId::Riscv => false,
        }
    }

    /// The calibrated cost model for this backend: ISCA-19 (Table 1) for
    /// x86, CVA6-derived for RISC-V.
    pub fn cost_model(self) -> CostModel {
        match self {
            ArchId::X86 => CostModel::default(),
            ArchId::Riscv => CostModel::cva6(),
        }
    }

    /// Profiling tag for an exit reason on this backend.
    pub fn tag(self, reason: ExitReason) -> &'static str {
        match self {
            ArchId::X86 => reason.tag(),
            ArchId::Riscv => riscv::tag(reason),
        }
    }

    /// Encodes a reason into this backend's exit-information pair:
    /// `(basic exit code, qualification)` on x86, `(scause, stval)` on
    /// RISC-V.
    pub fn encode(self, reason: ExitReason) -> (u64, u64) {
        match self {
            ArchId::X86 => reason.encode(),
            ArchId::Riscv => riscv::encode(reason),
        }
    }

    /// Decodes this backend's exit-information pair. Returns `None` for
    /// codes the backend never produces.
    pub fn decode(self, code: u64, qual: u64) -> Option<ExitReason> {
        match self {
            ArchId::X86 => ExitReason::decode(code, qual),
            ArchId::Riscv => riscv::decode(code, qual),
        }
    }

    /// The exit reason an unconditionally-trapping identification
    /// instruction raises: `cpuid` exits on x86; on RISC-V the
    /// equivalent probe is an emulated instruction that takes a
    /// virtual-instruction trap.
    pub fn cpuid_exit(self) -> ExitReason {
        match self {
            ArchId::X86 => ExitReason::Cpuid,
            ArchId::Riscv => ExitReason::VirtInstr,
        }
    }

    /// The exit reason a hypercall raises: `vmcall` on x86, an SBI call
    /// (`ecall` from VS-mode) on RISC-V.
    pub fn hypercall_exit(self, nr: u64) -> ExitReason {
        match self {
            ArchId::X86 => ExitReason::Vmcall { nr },
            ArchId::Riscv => ExitReason::SbiCall { nr },
        }
    }
}

impl std::fmt::Display for ArchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_dispatch_matches_inherent_methods() {
        // The X86 arm must stay a pure delegation: committed baselines
        // depend on these encodings byte-for-byte.
        for r in [
            ExitReason::Cpuid,
            ExitReason::Hlt,
            ExitReason::Vmcall { nr: 3 },
            ExitReason::MsrWrite { msr: 0x6e0 },
        ] {
            assert_eq!(ArchId::X86.encode(r), r.encode());
            assert_eq!(ArchId::X86.tag(r), r.tag());
        }
        let (c, q) = ExitReason::Vmresume.encode();
        assert_eq!(ArchId::X86.decode(c, q), Some(ExitReason::Vmresume));
    }

    #[test]
    fn default_is_x86() {
        assert_eq!(ArchId::default(), ArchId::X86);
    }

    #[test]
    fn parse_accepts_cli_spellings() {
        assert_eq!(ArchId::parse("x86"), Some(ArchId::X86));
        assert_eq!(ArchId::parse("riscv"), Some(ArchId::Riscv));
        assert_eq!(ArchId::parse("rv64"), Some(ArchId::Riscv));
        assert_eq!(ArchId::parse("arm"), None);
        for arch in ArchId::ALL {
            assert_eq!(ArchId::parse(arch.label()), Some(arch));
        }
    }

    #[test]
    fn guest_op_mapping_per_backend() {
        assert_eq!(ArchId::X86.cpuid_exit(), ExitReason::Cpuid);
        assert_eq!(ArchId::Riscv.cpuid_exit(), ExitReason::VirtInstr);
        assert_eq!(ArchId::X86.hypercall_exit(4), ExitReason::Vmcall { nr: 4 });
        assert_eq!(
            ArchId::Riscv.hypercall_exit(4),
            ExitReason::SbiCall { nr: 4 }
        );
    }

    #[test]
    fn riscv_round_trips_every_mapped_exit() {
        for r in [
            ArchId::Riscv.cpuid_exit(),
            ArchId::Riscv.hypercall_exit(9),
            ExitReason::Hlt,
            ExitReason::InterruptWindow,
        ] {
            let (c, q) = ArchId::Riscv.encode(r);
            assert_eq!(ArchId::Riscv.decode(c, q), Some(r));
        }
    }

    #[test]
    fn shadowing_defaults_differ() {
        assert!(ArchId::X86.default_shadowing());
        assert!(!ArchId::Riscv.default_shadowing());
    }
}

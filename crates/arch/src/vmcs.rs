//! The VM state descriptor (VMCS).
//!
//! A [`Vmcs`] is the per-vCPU descriptor hypervisors use to bootstrap the
//! minimal context of a guest (§ 2.1 of the paper): exit information,
//! guest/host state and execution controls. Nested virtualization keeps a
//! web of them (Fig. 2): `vmcs01` (L0's descriptor for L1), `vmcs01'` (the
//! one L1 *thinks* it runs L2 with), its shadow copy `vmcs12`, and the
//! real `vmcs02` L0 actually launches L2 on.

use std::fmt;

use svt_mem::Gpa;

use crate::fields::VmcsField;

/// Which virtualization hierarchy a VMCS describes, mostly for tracing and
/// sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmcsRole {
    /// L0's descriptor for a directly-hosted guest (vmcs01 / vmcs02).
    Host {
        /// Level of the guest it runs (1 for L1, 2 for L2).
        guest_level: u8,
    },
    /// A descriptor owned by a guest hypervisor (vmcs01'), emulated by L0.
    GuestOwned,
    /// L0's shadow copy of a guest-owned descriptor (vmcs12).
    Shadow,
}

/// A VM state descriptor.
///
/// # Examples
///
/// ```
/// use svt_arch::{Vmcs, VmcsField, VmcsRole};
/// use svt_mem::Gpa;
///
/// let mut v = Vmcs::new(VmcsRole::Host { guest_level: 1 }, Gpa(0x1000));
/// v.write(VmcsField::GuestRip, 0xfff0);
/// assert_eq!(v.read(VmcsField::GuestRip), 0xfff0);
/// ```
#[derive(Debug, Clone)]
pub struct Vmcs {
    role: VmcsRole,
    region: Gpa,
    fields: [u64; VmcsField::COUNT],
    launched: bool,
    dirty: Vec<VmcsField>,
}

impl Vmcs {
    /// Creates a zeroed descriptor whose backing region lives at `region`
    /// in its owner's physical address space.
    pub fn new(role: VmcsRole, region: Gpa) -> Self {
        Vmcs {
            role,
            region,
            fields: [0; VmcsField::COUNT],
            launched: false,
            dirty: Vec::new(),
        }
    }

    /// The descriptor's role in the nesting hierarchy.
    pub fn role(&self) -> VmcsRole {
        self.role
    }

    /// Backing-region address in the owner's physical address space — the
    /// identity hypervisors use to recognize a VMCS at `vmptrld` time.
    pub fn region(&self) -> Gpa {
        self.region
    }

    /// Reads a field.
    pub fn read(&self, f: VmcsField) -> u64 {
        self.fields[f.index()]
    }

    /// Writes a field, tracking it as dirty for lazy-sync modeling.
    pub fn write(&mut self, f: VmcsField, v: u64) {
        self.fields[f.index()] = v;
        if !self.dirty.contains(&f) {
            self.dirty.push(f);
        }
    }

    /// Whether the descriptor has been launched (VMLAUNCH vs VMRESUME
    /// distinction).
    pub fn launched(&self) -> bool {
        self.launched
    }

    /// Marks the descriptor launched.
    pub fn set_launched(&mut self) {
        self.launched = true;
    }

    /// Clears launch state (VMCLEAR).
    pub fn clear(&mut self) {
        self.launched = false;
        self.dirty.clear();
    }

    /// Fields written since the last [`Vmcs::take_dirty`], in write order.
    pub fn dirty(&self) -> &[VmcsField] {
        &self.dirty
    }

    /// Drains and returns the dirty set (a shadow-sync consumed it).
    pub fn take_dirty(&mut self) -> Vec<VmcsField> {
        std::mem::take(&mut self.dirty)
    }

    /// The SVt target-context fields as optional context numbers;
    /// `u64::MAX` encodes "invalid" per § 4 ("sets the SVt_nested field to
    /// an invalid value").
    pub fn svt_ctx(&self, f: VmcsField) -> Option<u8> {
        debug_assert!(VmcsField::SVT_FIELDS.contains(&f));
        match self.read(f) {
            u64::MAX => None,
            v => Some(v as u8),
        }
    }

    /// Encodes an optional context number into an SVt field.
    pub fn set_svt_ctx(&mut self, f: VmcsField, ctx: Option<u8>) {
        debug_assert!(VmcsField::SVT_FIELDS.contains(&f));
        self.write(f, ctx.map_or(u64::MAX, |c| c as u64));
    }

    fn role_code(&self) -> (u8, u8) {
        match self.role {
            VmcsRole::Host { guest_level } => (0, guest_level),
            VmcsRole::GuestOwned => (1, 0),
            VmcsRole::Shadow => (2, 0),
        }
    }

    /// Serializes the descriptor for `svt_sim::snapshot`: role and region
    /// (verified on load), all fields, launch state, and the dirty list
    /// in write order (lazy-sync behavior depends on it).
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        let (code, level) = self.role_code();
        w.u8(code);
        w.u8(level);
        w.u64(self.region.0);
        for f in &self.fields {
            w.u64(*f);
        }
        w.bool(self.launched);
        w.usize(self.dirty.len());
        for f in &self.dirty {
            w.u32(f.index() as u32);
        }
    }

    /// Restores state written by [`Vmcs::snap_save`] into a descriptor
    /// with the same role and region.
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation, a field index out of range, or a
    /// role/region mismatch.
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        use svt_sim::SnapError;
        let code = r.u8()?;
        let level = r.u8()?;
        let (live_code, live_level) = self.role_code();
        if (code, level) != (live_code, live_level) {
            return Err(SnapError::ShapeMismatch {
                what: "VMCS role",
                snapshot: ((code as u64) << 8) | level as u64,
                live: ((live_code as u64) << 8) | live_level as u64,
            });
        }
        let region = r.u64()?;
        if region != self.region.0 {
            return Err(SnapError::ShapeMismatch {
                what: "VMCS region",
                snapshot: region,
                live: self.region.0,
            });
        }
        for f in self.fields.iter_mut() {
            *f = r.u64()?;
        }
        self.launched = r.bool()?;
        let n = r.usize()?;
        self.dirty.clear();
        for _ in 0..n {
            let idx = r.u32()? as usize;
            let field = *VmcsField::ALL.get(idx).ok_or(SnapError::BadValue {
                what: "VmcsField",
                got: idx as u64,
            })?;
            self.dirty.push(field);
        }
        Ok(())
    }

    /// Folds fields, launch state, and dirty list into a fingerprint.
    pub fn snap_fingerprint(&self, fp: &mut svt_sim::snapshot::Fingerprint) {
        fp.fold(self.region.0);
        for f in &self.fields {
            fp.fold(*f);
        }
        fp.fold(self.launched as u64);
        fp.fold(self.dirty.len() as u64);
        for f in &self.dirty {
            fp.fold(f.index() as u64);
        }
    }
}

impl fmt::Display for Vmcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vmcs({:?} @ {:#x}, launched={})",
            self.role, self.region.0, self.launched
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vmcs() -> Vmcs {
        Vmcs::new(VmcsRole::Host { guest_level: 1 }, Gpa(0x4000))
    }

    #[test]
    fn fields_default_to_zero() {
        let v = vmcs();
        for &f in VmcsField::ALL {
            assert_eq!(v.read(f), 0);
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut v = vmcs();
        v.write(VmcsField::ExitReason, 10);
        v.write(VmcsField::GuestRip, 0x1234);
        assert_eq!(v.read(VmcsField::ExitReason), 10);
        assert_eq!(v.read(VmcsField::GuestRip), 0x1234);
    }

    #[test]
    fn dirty_tracking_deduplicates_and_drains() {
        let mut v = vmcs();
        v.write(VmcsField::GuestRip, 1);
        v.write(VmcsField::GuestRip, 2);
        v.write(VmcsField::GuestRsp, 3);
        assert_eq!(v.dirty(), &[VmcsField::GuestRip, VmcsField::GuestRsp]);
        let drained = v.take_dirty();
        assert_eq!(drained.len(), 2);
        assert!(v.dirty().is_empty());
    }

    #[test]
    fn launch_state_cycle() {
        let mut v = vmcs();
        assert!(!v.launched());
        v.set_launched();
        assert!(v.launched());
        v.clear();
        assert!(!v.launched());
    }

    #[test]
    fn svt_ctx_encoding() {
        let mut v = vmcs();
        v.set_svt_ctx(VmcsField::SvtVm, Some(1));
        v.set_svt_ctx(VmcsField::SvtNested, None);
        assert_eq!(v.svt_ctx(VmcsField::SvtVm), Some(1));
        assert_eq!(v.svt_ctx(VmcsField::SvtNested), None);
        assert_eq!(v.read(VmcsField::SvtNested), u64::MAX);
    }

    #[test]
    fn region_identity_preserved() {
        let v = Vmcs::new(VmcsRole::GuestOwned, Gpa(0xdead000));
        assert_eq!(v.region(), Gpa(0xdead000));
        assert!(v.to_string().contains("0xdead000"));
    }
}

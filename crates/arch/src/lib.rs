//! ISA-neutral virtualization-architecture layer.
//!
//! The single-level hardware virtualization substrate the paper's nested
//! stack is built on (§ 2.1), split into an ISA-neutral core and
//! per-backend dispatch so the Turtles reflection path and both SVt
//! engines run unmodified on more than one ISA:
//!
//! * [`Vmcs`]/[`VmcsField`] — VM state descriptors with the field
//!   classification that drives shadowing and transformation costs (the
//!   VMCS on x86, the hs/vs CSR file on RISC-V);
//! * [`ExitReason`] — every trap the hardware can raise; [`ArchId`]
//!   owns the per-backend encode/decode through the exit-information
//!   fields and the per-backend profiling tags;
//! * [`ExecPolicy`] — which guest operations trap, including the nested
//!   policy merge L0 performs when building vmcs02;
//! * [`Ept`] — two-level address translation with MMIO-misconfig marking
//!   and composition (`ept02 = ept12 ∘ ept01`; EPT on x86, the `hgatp`
//!   G-stage on RISC-V);
//! * [`LocalApic`] — per-vCPU interrupt file and deadline timer (x2APIC
//!   on x86, IMSIC + `vstimecmp` on RISC-V); the `MSR_*`/`VECTOR_*`
//!   constants form the neutral register namespace both backends share;
//! * [`ArchId`] — backend selection: encodings, tags, guest-op→exit
//!   mapping, shadowing capability and cost-model calibration.
//!
//! # Examples
//!
//! ```
//! use svt_arch::{ArchId, ExitReason, VmcsField, Vmcs, VmcsRole};
//! use svt_mem::Gpa;
//!
//! // L0 reflects a trap by encoding it into vmcs12's exit fields...
//! let arch = ArchId::X86;
//! let mut vmcs12 = Vmcs::new(VmcsRole::Shadow, Gpa(0x3000));
//! let (code, qual) = arch.encode(ExitReason::Cpuid);
//! vmcs12.write(VmcsField::ExitReason, code);
//! vmcs12.write(VmcsField::ExitQualification, qual);
//! // ...and L1 decodes what a real hypervisor could read back.
//! let decoded = arch.decode(
//!     vmcs12.read(VmcsField::ExitReason),
//!     vmcs12.read(VmcsField::ExitQualification),
//! );
//! assert_eq!(decoded, Some(ExitReason::Cpuid));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod apic;
mod controls;
mod ept;
mod exit;
mod fields;
mod id;
pub mod riscv;
mod vmcs;

pub use apic::{
    DeliveryMode, IcrCommand, LocalApic, MSR_APIC_BASE, MSR_EFER, MSR_SPEC_CTRL, MSR_TSC_DEADLINE,
    MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI, VECTOR_TIMER, VECTOR_VIRTIO,
};
pub use controls::ExecPolicy;
pub use ept::{Access, Ept, EptFault, EptPerms};
pub use exit::ExitReason;
pub use fields::{FieldGroup, VmcsField};
pub use id::ArchId;
pub use vmcs::{Vmcs, VmcsRole};

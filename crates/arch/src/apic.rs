//! Local APIC and timer model.
//!
//! Each vCPU owns a [`LocalApic`] with the request/in-service register
//! pair, priority-ordered delivery, EOI, and the TSC-deadline timer whose
//! `MSR_WRITE` reprogramming traffic dominates the paper's timer-related
//! profiles (§ 6.3.1, § 6.3.3).

use svt_sim::SimTime;

/// MSR index of the TSC-deadline timer (IA32_TSC_DEADLINE).
pub const MSR_TSC_DEADLINE: u32 = 0x6e0;
/// MSR index of the APIC base register.
pub const MSR_APIC_BASE: u32 = 0x1b;
/// MSR index of EFER.
pub const MSR_EFER: u32 = 0xc000_0080;
/// MSR index of SPEC_CTRL (part of the world-switch state).
pub const MSR_SPEC_CTRL: u32 = 0x48;
/// MSR index of the x2APIC EOI register.
pub const MSR_X2APIC_EOI: u32 = 0x80b;
/// MSR index of the x2APIC interrupt-command register (IPIs).
pub const MSR_X2APIC_ICR: u32 = 0x830;

/// Interrupt vector used by the virtio completion interrupts in the
/// simulated machine.
pub const VECTOR_VIRTIO: u8 = 0x50;
/// Interrupt vector of the TSC-deadline (LAPIC timer) interrupt.
pub const VECTOR_TIMER: u8 = 0xec;
/// Interrupt vector used for inter-processor interrupts.
pub const VECTOR_IPI: u8 = 0xf2;

/// x2APIC IPI delivery mode (ICR bits 10:8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Deliver the vector in the command (encoding 0b000).
    Fixed,
    /// INIT: reset the target vCPU to its wait-for-SIPI state (0b101).
    Init,
    /// Startup IPI: start the target at the given vector page (0b110).
    Startup,
}

impl DeliveryMode {
    fn encode(self) -> u64 {
        match self {
            DeliveryMode::Fixed => 0b000,
            DeliveryMode::Init => 0b101,
            DeliveryMode::Startup => 0b110,
        }
    }

    fn decode(bits: u64) -> Option<Self> {
        match bits {
            0b000 => Some(DeliveryMode::Fixed),
            0b101 => Some(DeliveryMode::Init),
            0b110 => Some(DeliveryMode::Startup),
            _ => None,
        }
    }
}

/// A decoded x2APIC interrupt command (one `WRMSR` to [`MSR_X2APIC_ICR`]).
///
/// In x2APIC mode the ICR is a single 64-bit MSR: vector in bits 7:0,
/// delivery mode in bits 10:8, destination APIC id (= vCPU id in this
/// machine) in bits 63:32.
///
/// # Examples
///
/// ```
/// use svt_arch::{DeliveryMode, IcrCommand, VECTOR_IPI};
///
/// let cmd = IcrCommand::fixed(VECTOR_IPI, 3);
/// let decoded = IcrCommand::decode(cmd.encode()).unwrap();
/// assert_eq!(decoded.dest, 3);
/// assert_eq!(decoded.mode, DeliveryMode::Fixed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcrCommand {
    /// Interrupt vector (ignored for INIT).
    pub vector: u8,
    /// Delivery mode.
    pub mode: DeliveryMode,
    /// Destination APIC id.
    pub dest: u32,
}

impl IcrCommand {
    /// A fixed-vector IPI to one destination.
    pub const fn fixed(vector: u8, dest: u32) -> Self {
        IcrCommand {
            vector,
            mode: DeliveryMode::Fixed,
            dest,
        }
    }

    /// An INIT IPI to one destination.
    pub const fn init(dest: u32) -> Self {
        IcrCommand {
            vector: 0,
            mode: DeliveryMode::Init,
            dest,
        }
    }

    /// Encodes the command as the x2APIC ICR MSR value.
    pub fn encode(self) -> u64 {
        self.vector as u64 | (self.mode.encode() << 8) | ((self.dest as u64) << 32)
    }

    /// Decodes an ICR MSR value; `None` for unsupported delivery modes.
    pub fn decode(value: u64) -> Option<Self> {
        Some(IcrCommand {
            vector: (value & 0xff) as u8,
            mode: DeliveryMode::decode((value >> 8) & 0b111)?,
            dest: (value >> 32) as u32,
        })
    }
}

/// One vCPU's local interrupt controller.
///
/// # Examples
///
/// ```
/// use svt_arch::LocalApic;
///
/// let mut apic = LocalApic::new();
/// assert!(apic.inject(0x50)); // newly pending
/// assert!(!apic.inject(0x50)); // coalesced into the latched request
/// assert_eq!(apic.ack(), Some(0x50));
/// apic.eoi();
/// assert_eq!(apic.ack(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalApic {
    /// Interrupt request register: one bit per vector.
    irr: [u64; 4],
    /// In-service vectors, innermost last.
    isr: Vec<u8>,
    /// Armed TSC deadline, if any.
    tsc_deadline: Option<SimTime>,
    /// Count of interrupts that were delivered later than the deadline
    /// they were armed for (used by the video-playback experiment).
    late_timer_fires: u64,
    /// Injections that newly latched a request bit.
    delivered: u64,
    /// Injections absorbed by an already-pending request bit.
    coalesced: u64,
}

impl LocalApic {
    /// Creates an idle APIC.
    pub fn new() -> Self {
        LocalApic::default()
    }

    /// Latches an interrupt request. Returns whether the vector became
    /// newly pending (`false`: it was already latched, so this injection
    /// coalesced — the causal IPI exactly-once watchdog cares).
    pub fn inject(&mut self, vector: u8) -> bool {
        let word = (vector / 64) as usize;
        let bit = 1u64 << (vector % 64);
        let newly = self.irr[word] & bit == 0;
        self.irr[word] |= bit;
        if newly {
            self.delivered += 1;
        } else {
            self.coalesced += 1;
        }
        newly
    }

    /// Injections that newly latched a request bit.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Injections absorbed by an already-pending request bit.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Whether `vector` is pending.
    pub fn is_pending(&self, vector: u8) -> bool {
        self.irr[(vector / 64) as usize] & (1u64 << (vector % 64)) != 0
    }

    /// Highest-priority pending vector that beats everything in service,
    /// without acknowledging it.
    pub fn pending(&self) -> Option<u8> {
        let highest = (0..4usize).rev().find_map(|w| {
            let bits = self.irr[w];
            if bits == 0 {
                None
            } else {
                Some((w as u8) * 64 + (63 - bits.leading_zeros() as u8))
            }
        })?;
        match self.isr.last() {
            Some(&in_service) if in_service >= highest => None,
            _ => Some(highest),
        }
    }

    /// Acknowledges the highest-priority pending interrupt: moves it from
    /// request to in-service and returns its vector.
    pub fn ack(&mut self) -> Option<u8> {
        let v = self.pending()?;
        self.irr[(v / 64) as usize] &= !(1u64 << (v % 64));
        self.isr.push(v);
        Some(v)
    }

    /// Signals end-of-interrupt for the innermost in-service vector.
    pub fn eoi(&mut self) {
        self.isr.pop();
    }

    /// Vectors currently in service (innermost last).
    pub fn in_service(&self) -> &[u8] {
        &self.isr
    }

    /// Arms (or disarms, with `None`) the TSC-deadline timer.
    pub fn set_tsc_deadline(&mut self, deadline: Option<SimTime>) {
        self.tsc_deadline = deadline;
    }

    /// The armed deadline, if any.
    pub fn tsc_deadline(&self) -> Option<SimTime> {
        self.tsc_deadline
    }

    /// Fires the timer if its deadline has passed: injects
    /// [`VECTOR_TIMER`], disarms, records lateness, and returns how late
    /// delivery was.
    pub fn poll_timer(&mut self, now: SimTime) -> Option<svt_sim::SimDuration> {
        let deadline = self.tsc_deadline?;
        if now < deadline {
            return None;
        }
        self.tsc_deadline = None;
        self.inject(VECTOR_TIMER);
        let late = now.since(deadline);
        if !late.is_zero() {
            self.late_timer_fires += 1;
        }
        Some(late)
    }

    /// Number of timer interrupts delivered after their armed deadline.
    pub fn late_timer_fires(&self) -> u64 {
        self.late_timer_fires
    }

    /// Whether any interrupt is pending or in service.
    pub fn is_idle(&self) -> bool {
        self.irr.iter().all(|w| *w == 0) && self.isr.is_empty()
    }

    /// Serializes the APIC for `svt_sim::snapshot`.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        for word in self.irr {
            w.u64(word);
        }
        w.usize(self.isr.len());
        for v in &self.isr {
            w.u8(*v);
        }
        match self.tsc_deadline {
            Some(t) => {
                w.u8(1);
                w.u64(t.as_ps());
            }
            None => w.u8(0),
        }
        w.u64(self.late_timer_fires);
        w.u64(self.delivered);
        w.u64(self.coalesced);
    }

    /// Restores state written by [`LocalApic::snap_save`].
    ///
    /// # Errors
    ///
    /// Typed `SnapError` on truncation or a malformed option tag.
    pub fn snap_load(&mut self, r: &mut svt_sim::SnapReader<'_>) -> Result<(), svt_sim::SnapError> {
        for word in self.irr.iter_mut() {
            *word = r.u64()?;
        }
        let n = r.usize()?;
        self.isr.clear();
        for _ in 0..n {
            self.isr.push(r.u8()?);
        }
        self.tsc_deadline = match r.u8()? {
            0 => None,
            1 => Some(SimTime::from_ps(r.u64()?)),
            b => {
                return Err(svt_sim::SnapError::BadValue {
                    what: "tsc deadline tag",
                    got: b as u64,
                })
            }
        };
        self.late_timer_fires = r.u64()?;
        self.delivered = r.u64()?;
        self.coalesced = r.u64()?;
        Ok(())
    }

    /// Folds the full APIC state into a fingerprint.
    pub fn snap_fingerprint(&self, fp: &mut svt_sim::snapshot::Fingerprint) {
        for word in self.irr {
            fp.fold(word);
        }
        fp.fold(self.isr.len() as u64);
        for v in &self.isr {
            fp.fold(*v as u64);
        }
        fp.fold(self.tsc_deadline.map_or(u64::MAX, |t| t.as_ps()));
        fp.fold(self.late_timer_fires);
        fp.fold(self.delivered);
        fp.fold(self.coalesced);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svt_sim::SimDuration;

    #[test]
    fn inject_distinguishes_delivery_from_coalescing() {
        let mut apic = LocalApic::new();
        assert!(apic.inject(0x50));
        assert!(!apic.inject(0x50));
        assert!(apic.inject(0x51));
        assert_eq!(apic.delivered(), 2);
        assert_eq!(apic.coalesced(), 1);
        // Once acked, the vector can become newly pending again.
        assert_eq!(apic.ack(), Some(0x51));
        assert!(apic.inject(0x51));
        assert_eq!(apic.delivered(), 3);
    }

    #[test]
    fn inject_ack_eoi_cycle() {
        let mut a = LocalApic::new();
        assert!(a.is_idle());
        a.inject(0x20);
        assert!(a.is_pending(0x20));
        assert_eq!(a.ack(), Some(0x20));
        assert!(!a.is_pending(0x20));
        assert_eq!(a.in_service(), &[0x20]);
        a.eoi();
        assert!(a.is_idle());
    }

    #[test]
    fn priority_ordering() {
        let mut a = LocalApic::new();
        a.inject(0x30);
        a.inject(0xf0);
        a.inject(0x80);
        assert_eq!(a.ack(), Some(0xf0));
        // Lower-priority vectors are masked while 0xf0 is in service.
        assert_eq!(a.pending(), None);
        a.eoi();
        assert_eq!(a.ack(), Some(0x80));
        a.eoi();
        assert_eq!(a.ack(), Some(0x30));
    }

    #[test]
    fn nested_interrupts_higher_priority_preempts() {
        let mut a = LocalApic::new();
        a.inject(0x30);
        assert_eq!(a.ack(), Some(0x30));
        a.inject(0xe0);
        // A higher-priority vector may preempt the in-service one.
        assert_eq!(a.ack(), Some(0xe0));
        assert_eq!(a.in_service(), &[0x30, 0xe0]);
        a.eoi();
        assert_eq!(a.in_service(), &[0x30]);
    }

    #[test]
    fn duplicate_injects_collapse() {
        let mut a = LocalApic::new();
        a.inject(0x55);
        a.inject(0x55);
        assert_eq!(a.ack(), Some(0x55));
        a.eoi();
        assert_eq!(a.ack(), None);
    }

    #[test]
    fn timer_fires_once_and_tracks_lateness() {
        let mut a = LocalApic::new();
        a.set_tsc_deadline(Some(SimTime::from_us(100)));
        assert_eq!(a.poll_timer(SimTime::from_us(99)), None);
        let late = a.poll_timer(SimTime::from_us(103)).unwrap();
        assert_eq!(late, SimDuration::from_us(3));
        assert!(a.is_pending(VECTOR_TIMER));
        assert_eq!(a.late_timer_fires(), 1);
        // Disarmed after firing.
        assert_eq!(a.poll_timer(SimTime::from_us(200)), None);
    }

    #[test]
    fn on_time_timer_is_not_late() {
        let mut a = LocalApic::new();
        a.set_tsc_deadline(Some(SimTime::from_us(10)));
        let late = a.poll_timer(SimTime::from_us(10)).unwrap();
        assert!(late.is_zero());
        assert_eq!(a.late_timer_fires(), 0);
    }

    #[test]
    fn rearm_replaces_deadline() {
        let mut a = LocalApic::new();
        a.set_tsc_deadline(Some(SimTime::from_us(10)));
        a.set_tsc_deadline(Some(SimTime::from_us(50)));
        assert_eq!(a.poll_timer(SimTime::from_us(20)), None);
        a.set_tsc_deadline(None);
        assert_eq!(a.poll_timer(SimTime::from_us(100)), None);
    }

    #[test]
    fn icr_roundtrip_all_modes() {
        for cmd in [
            IcrCommand::fixed(VECTOR_IPI, 0),
            IcrCommand::fixed(0x20, 7),
            IcrCommand::init(2),
            IcrCommand {
                vector: 0x10,
                mode: DeliveryMode::Startup,
                dest: 15,
            },
        ] {
            assert_eq!(IcrCommand::decode(cmd.encode()), Some(cmd));
        }
    }

    #[test]
    fn icr_decode_rejects_unsupported_modes() {
        // SMI (0b010) and lowest-priority (0b001) are not modeled.
        assert_eq!(IcrCommand::decode(0x200), None);
        assert_eq!(IcrCommand::decode(0x100), None);
    }

    #[test]
    fn icr_field_packing_matches_x2apic_layout() {
        let v = IcrCommand::fixed(0xf2, 3).encode();
        assert_eq!(v & 0xff, 0xf2);
        assert_eq!((v >> 8) & 0b111, 0);
        assert_eq!(v >> 32, 3);
    }

    #[test]
    fn vector_boundaries() {
        let mut a = LocalApic::new();
        a.inject(0);
        a.inject(63);
        a.inject(64);
        a.inject(255);
        assert_eq!(a.ack(), Some(255));
        a.eoi();
        assert_eq!(a.ack(), Some(64));
        a.eoi();
        assert_eq!(a.ack(), Some(63));
        a.eoi();
        assert_eq!(a.ack(), Some(0));
    }
}

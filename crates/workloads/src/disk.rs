//! Disk benchmarks: ioping-style latency and fio-style bandwidth.
//!
//! Both issue real virtio-blk requests (header/data/status descriptor
//! chains with data actually moving through the RAM disk). The latency
//! benchmark is synchronous (queue depth 1, 512 B accesses, as ioping);
//! the bandwidth benchmark keeps a queue depth of 4 KB requests in
//! flight, as the paper's fio runs.

use svt_sim::FnvHashMap;

use svt_arch::{MSR_X2APIC_EOI, VECTOR_TIMER};
use svt_hv::{GuestCtx, GuestOp, GuestProgram};
use svt_mem::Hpa;
use svt_sim::{DetRng, SimDuration, SimTime};
use svt_stats::LatencyRecorder;
use svt_virtio::{Virtqueue, BLK_T_IN, BLK_T_OUT};

use crate::layout;
use crate::server::VECTOR_BLK;

/// Benchmark shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskMode {
    /// ioping: one outstanding request, per-request latency.
    Latency,
    /// fio: `qd` outstanding requests, aggregate bandwidth.
    Bandwidth {
        /// Queue depth.
        qd: u32,
    },
}

/// The disk benchmark program.
#[derive(Debug)]
pub struct DiskBench {
    mode: DiskMode,
    write: bool,
    req_bytes: u32,
    total_ops: u64,
    blk_layer: SimDuration,
    queue: Virtqueue,
    rng: DetRng,
    slots: Vec<u64>,
    inflight: FnvHashMap<u16, SimTime>,
    slot_of: FnvHashMap<u16, u64>,
    submitted: u64,
    completed: u64,
    completions_pending: u32,
    eoi_owed: u32,
    pending: Vec<GuestOp>,
    latency: LatencyRecorder,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    init_done: bool,
}

impl DiskBench {
    /// Random accesses of `req_bytes` each; `write` selects the direction.
    pub fn new(
        cost: &svt_sim::CostModel,
        mode: DiskMode,
        write: bool,
        req_bytes: u32,
        total_ops: u64,
    ) -> Self {
        let depth = match mode {
            DiskMode::Latency => 1,
            DiskMode::Bandwidth { qd } => qd,
        };
        assert!((1..=8).contains(&depth), "queue depth fits the slot pool");
        DiskBench {
            mode,
            write,
            req_bytes,
            total_ops,
            blk_layer: cost.blk_layer_per_req,
            queue: Virtqueue::new(layout::BLK_QUEUE, 32),
            rng: DetRng::seed(0x5157),
            slots: (0..8)
                .map(|i| layout::BLK_BUFS.0 + i * layout::BUF_SIZE * 4)
                .collect(),
            inflight: FnvHashMap::default(),
            slot_of: FnvHashMap::default(),
            submitted: 0,
            completed: 0,
            completions_pending: 0,
            eoi_owed: 0,
            pending: Vec::new(),
            latency: LatencyRecorder::new(),
            started: None,
            finished: None,
            init_done: false,
        }
    }

    /// Per-request latencies (latency mode).
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Aggregate bandwidth in KB/s over the active window.
    ///
    /// # Panics
    ///
    /// Panics before the run finishes.
    pub fn bandwidth_kb_s(&self) -> f64 {
        let start = self.started.expect("run not started");
        let end = self.finished.expect("run not finished");
        let kb = self.completed as f64 * self.req_bytes as f64 / 1000.0;
        kb / end.since(start).as_secs()
    }

    /// Completed operations.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn depth(&self) -> u32 {
        match self.mode {
            DiskMode::Latency => 1,
            DiskMode::Bandwidth { qd } => qd,
        }
    }

    fn submit_one(&mut self, ctx: &mut GuestCtx<'_>) -> bool {
        if self.submitted >= self.total_ops {
            return false;
        }
        let Some(slot) = self.slots.pop() else {
            return false;
        };
        let hdr = slot;
        let status = slot + 0x20;
        let data = slot + 0x100;
        let sector = self.rng.below(1 << 20);
        ctx.mem
            .write_u32(Hpa(hdr), if self.write { BLK_T_OUT } else { BLK_T_IN })
            .expect("hdr in RAM");
        ctx.mem.write_u64(Hpa(hdr + 8), sector).expect("hdr in RAM");
        if self.write {
            ctx.mem
                .write_u64(Hpa(data), 0xd15c_0000 + self.submitted)
                .expect("data in RAM");
        }
        let head = self
            .queue
            .driver_add(
                ctx.mem,
                &[
                    (hdr, 16, false),
                    (data, self.req_bytes, !self.write),
                    (status, 1, true),
                ],
            )
            .expect("blk ring in RAM");
        self.inflight.insert(head, ctx.now);
        self.slot_of.insert(head, slot);
        self.submitted += 1;
        true
    }
}

impl GuestProgram for DiskBench {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        if self.eoi_owed > 0 {
            self.eoi_owed -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if !self.init_done {
            self.init_done = true;
            self.queue.init(ctx.mem).expect("blk ring in RAM");
            self.started = Some(ctx.now);
            let depth = self.depth();
            let mut n = 0;
            for _ in 0..depth {
                if self.submit_one(ctx) {
                    n += 1;
                }
            }
            if n > 0 {
                self.pending.push(GuestOp::MmioWrite {
                    gpa: layout::BLK_MMIO,
                    value: 1,
                });
                return GuestOp::Compute(self.blk_layer * n);
            }
        }
        if self.completed >= self.total_ops {
            if self.finished.is_none() {
                self.finished = Some(ctx.now);
            }
            return GuestOp::Done;
        }
        if self.completions_pending > 0 {
            let n = self.completions_pending;
            self.completions_pending = 0;
            let mut posted = 0;
            for _ in 0..n {
                if self.submit_one(ctx) {
                    posted += 1;
                }
            }
            if posted > 0 {
                self.pending.push(GuestOp::MmioWrite {
                    gpa: layout::BLK_MMIO,
                    value: 1,
                });
                return GuestOp::Compute(self.blk_layer * posted);
            }
        }
        GuestOp::Hlt
    }

    fn interrupt(&mut self, vector: u8, ctx: &mut GuestCtx<'_>) {
        self.eoi_owed += 1;
        if vector == VECTOR_BLK || vector == svt_arch::VECTOR_VIRTIO {
            while let Some((head, _)) = self.queue.driver_take_used(ctx.mem).expect("blk ring") {
                if let Some(t0) = self.inflight.remove(&head) {
                    self.latency.record(ctx.now.since(t0).as_ns());
                    self.completed += 1;
                    self.completions_pending += 1;
                }
                if let Some(slot) = self.slot_of.remove(&head) {
                    self.slots.push(slot);
                }
            }
        } else if vector == VECTOR_TIMER {
            // Stray timer.
        }
    }

    fn name(&self) -> &'static str {
        "disk-bench"
    }
}

//! TPC-C-lite: a small transactional engine behind the server.
//!
//! Implements the five TPC-C transaction types over real in-memory
//! tables (warehouse/district/customer/stock/orders) with the standard
//! 45/43/4/4/4 mix. Every read-write transaction appends a write-ahead-log
//! record that the server persists to virtio-blk before replying — the
//! disk+network throughput composition Fig. 9 measures with
//! sysbench-TPCC on PostgreSQL.

use std::cell::RefCell;
use std::rc::Rc;
use svt_sim::FnvHashMap;

use svt_mem::GuestMemory;
use svt_sim::{DetRng, SimDuration};

use crate::loadgen::{Request, RequestSource};
use crate::server::{ParsedRequest, ServeOutput, ServiceModel};

/// Transaction types, encoded in the request `op` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxType {
    /// ~45 %: order placement (read-write).
    NewOrder,
    /// ~43 %: payment (read-write).
    Payment,
    /// ~4 %: order status (read-only).
    OrderStatus,
    /// ~4 %: batch delivery (read-write).
    Delivery,
    /// ~4 %: stock level (read-only).
    StockLevel,
}

impl TxType {
    /// Decodes from a wire op code.
    pub fn from_op(op: u32) -> TxType {
        match op {
            0 => TxType::NewOrder,
            1 => TxType::Payment,
            2 => TxType::OrderStatus,
            3 => TxType::Delivery,
            _ => TxType::StockLevel,
        }
    }

    /// Encodes to a wire op code.
    pub fn op(self) -> u32 {
        match self {
            TxType::NewOrder => 0,
            TxType::Payment => 1,
            TxType::OrderStatus => 2,
            TxType::Delivery => 3,
            TxType::StockLevel => 4,
        }
    }

    /// Whether the transaction mutates state (and therefore logs).
    pub fn is_write(self) -> bool {
        matches!(self, TxType::NewOrder | TxType::Payment | TxType::Delivery)
    }
}

#[derive(Debug, Clone)]
struct Customer {
    balance: i64,
    payments: u32,
}

#[derive(Debug, Clone)]
struct Order {
    customer: u64,
    lines: Vec<(u64, u32)>,
    delivered: bool,
}

/// The in-memory TPC-C database.
#[derive(Debug)]
pub struct TpccDb {
    warehouses: u64,
    districts_per_wh: u64,
    /// district id -> next order number.
    next_order: FnvHashMap<u64, u64>,
    customers: FnvHashMap<u64, Customer>,
    stock: FnvHashMap<u64, i64>,
    orders: FnvHashMap<(u64, u64), Order>,
    undelivered: Vec<(u64, u64)>,
    committed: u64,
}

impl TpccDb {
    /// Builds a database with the given warehouse count (10 districts and
    /// 3 000 customers per warehouse; 100 000 stocked items).
    pub fn new(warehouses: u64) -> Self {
        let districts_per_wh = 10;
        let mut customers = FnvHashMap::default();
        for c in 0..warehouses * 3000 {
            customers.insert(
                c,
                Customer {
                    balance: -1000,
                    payments: 0,
                },
            );
        }
        let mut stock = FnvHashMap::default();
        for i in 0..100_000u64 {
            stock.insert(i, 100);
        }
        let mut next_order = FnvHashMap::default();
        for d in 0..warehouses * districts_per_wh {
            next_order.insert(d, 1);
        }
        TpccDb {
            warehouses,
            districts_per_wh,
            next_order,
            customers,
            stock,
            orders: FnvHashMap::default(),
            undelivered: Vec::new(),
            committed: 0,
        }
    }

    /// Committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Orders currently stored.
    pub fn order_count(&self) -> usize {
        self.orders.len()
    }

    /// Total order lines across stored orders (sanity metric for tests
    /// and reports).
    pub fn order_line_count(&self) -> usize {
        self.orders.values().map(|o| o.lines.len()).sum()
    }

    fn district_of(&self, key: u64) -> u64 {
        key % (self.warehouses * self.districts_per_wh)
    }

    /// Executes one transaction; returns `(rows_touched, wal_bytes)`.
    pub fn execute(&mut self, tx: TxType, key: u64, rng_lines: u32) -> (u32, u32) {
        let rows = match tx {
            TxType::NewOrder => {
                let d = self.district_of(key);
                let order_no = {
                    let n = self.next_order.get_mut(&d).expect("district exists");
                    let v = *n;
                    *n += 1;
                    v
                };
                let lines: Vec<(u64, u32)> = (0..rng_lines.clamp(5, 15))
                    .map(|i| ((key * 17 + i as u64 * 31) % 100_000, 1 + i % 5))
                    .collect();
                for (item, qty) in &lines {
                    let s = self.stock.get_mut(item).expect("item stocked");
                    *s -= *qty as i64;
                    if *s < 10 {
                        *s += 91;
                    }
                }
                let n_lines = lines.len() as u32;
                self.orders.insert(
                    (d, order_no),
                    Order {
                        customer: key % (self.warehouses * 3000),
                        lines,
                        delivered: false,
                    },
                );
                self.undelivered.push((d, order_no));
                3 + 2 * n_lines
            }
            TxType::Payment => {
                let c = key % (self.warehouses * 3000);
                let cust = self.customers.get_mut(&c).expect("customer exists");
                cust.balance += 500;
                cust.payments += 1;
                4
            }
            TxType::OrderStatus => {
                let c = key % (self.warehouses * 3000);
                let found = self
                    .orders
                    .values()
                    .any(|o| o.customer == c && !o.delivered);
                2 + found as u32
            }
            TxType::Delivery => {
                let mut delivered = 0;
                for _ in 0..10 {
                    if let Some(id) = self.undelivered.pop() {
                        if let Some(o) = self.orders.get_mut(&id) {
                            o.delivered = true;
                            delivered += 1;
                        }
                    }
                }
                2 + 3 * delivered
            }
            TxType::StockLevel => {
                let low = self.stock.values().take(200).filter(|&&s| s < 50).count() as u32;
                20 + low / 8
            }
        };
        self.committed += 1;
        let wal = if tx.is_write() { 96 + rows * 48 } else { 0 };
        (rows, wal)
    }
}

impl TxType {
    /// SQL statements sysbench-TPCC issues for this transaction type
    /// (each is a separate client round trip).
    pub fn statements(self) -> u32 {
        match self {
            TxType::NewOrder => 48,
            TxType::Payment => 28,
            TxType::OrderStatus => 14,
            TxType::Delivery => 34,
            TxType::StockLevel => 10,
        }
    }
}

/// The standard transaction mix as a *per-statement* request stream:
/// every SQL statement of a transaction is its own client round trip, as
/// with a real sysbench-TPCC driver. The `vsize` field carries the number
/// of statements remaining after this one (0 ⇒ commit).
#[derive(Debug, Clone)]
pub struct TpccSource {
    warehouses: u64,
    current_tx: Option<(TxType, u32)>,
}

impl TpccSource {
    /// Requests against `warehouses` warehouses.
    pub fn new(warehouses: u64) -> Self {
        TpccSource {
            warehouses,
            current_tx: None,
        }
    }

    fn pick_type(&self, rng: &mut DetRng) -> TxType {
        let u = rng.unit();
        if u < 0.45 {
            TxType::NewOrder
        } else if u < 0.88 {
            TxType::Payment
        } else if u < 0.92 {
            TxType::OrderStatus
        } else if u < 0.96 {
            TxType::Delivery
        } else {
            TxType::StockLevel
        }
    }
}

impl RequestSource for TpccSource {
    fn next(&mut self, rng: &mut DetRng) -> Request {
        let (tx, remaining) = match self.current_tx.take() {
            Some((tx, n)) => (tx, n),
            None => {
                let tx = self.pick_type(rng);
                (tx, tx.statements() - 1)
            }
        };
        if remaining > 0 {
            self.current_tx = Some((tx, remaining - 1));
        }
        Request {
            op: tx.op(),
            key: rng.below(self.warehouses * 3000),
            vsize: remaining,
        }
    }
}

/// The database service behind the server: per-statement execution with
/// buffer-cache-miss reads, and real transaction execution plus WAL
/// persistence at commit.
#[derive(Debug)]
pub struct TpccService {
    db: Rc<RefCell<TpccDb>>,
    /// Parse/plan/execute cost per SQL statement.
    pub stmt_cost: SimDuration,
    /// Cost per row touched at commit.
    pub per_row: SimDuration,
    /// Every n-th statement misses the buffer cache and reads a page.
    pub miss_every: u64,
    stmt_counter: u64,
}

impl TpccService {
    /// A service over a fresh database; returns the service and a shared
    /// handle to the database for post-run inspection.
    pub fn new(warehouses: u64) -> (Self, Rc<RefCell<TpccDb>>) {
        let db = Rc::new(RefCell::new(TpccDb::new(warehouses)));
        (
            TpccService {
                db: Rc::clone(&db),
                stmt_cost: SimDuration::from_us(45),
                per_row: SimDuration::from_us(3),
                miss_every: 3,
                stmt_counter: 0,
            },
            db,
        )
    }
}

impl ServiceModel for TpccService {
    fn serve(&mut self, req: &ParsedRequest, _mem: &mut GuestMemory) -> ServeOutput {
        let tx = TxType::from_op(req.op);
        self.stmt_counter += 1;
        let miss = self.miss_every > 0 && self.stmt_counter.is_multiple_of(self.miss_every);
        if req.vsize > 0 {
            // Intermediate statement: point read/update.
            ServeOutput {
                compute: self.stmt_cost,
                reply_len: 64,
                disk_reads: miss as u32,
                wal_bytes: 0,
            }
        } else {
            // Final statement: execute and commit the whole transaction.
            let (rows, wal) = self.db.borrow_mut().execute(tx, req.key, 10);
            ServeOutput {
                compute: self.stmt_cost + self.per_row * rows as u64,
                reply_len: 64,
                disk_reads: miss as u32,
                wal_bytes: wal.max(96),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_order_creates_order_and_moves_stock() {
        let mut db = TpccDb::new(1);
        let before: i64 = db.stock.values().sum();
        let (rows, wal) = db.execute(TxType::NewOrder, 42, 7);
        assert!(rows >= 3 + 2 * 5);
        assert!(wal > 96);
        assert_eq!(db.order_count(), 1);
        assert!(db.order_line_count() >= 5);
        let after: i64 = db.stock.values().sum();
        assert!(after != before);
        assert_eq!(db.committed(), 1);
    }

    #[test]
    fn payment_updates_balance() {
        let mut db = TpccDb::new(1);
        db.execute(TxType::Payment, 7, 0);
        db.execute(TxType::Payment, 7, 0);
        let c = db.customers.get(&7).unwrap();
        assert_eq!(c.balance, 0);
        assert_eq!(c.payments, 2);
    }

    #[test]
    fn delivery_marks_orders_delivered() {
        let mut db = TpccDb::new(1);
        for k in 0..5 {
            db.execute(TxType::NewOrder, k, 5);
        }
        db.execute(TxType::Delivery, 0, 0);
        assert!(db.orders.values().all(|o| o.delivered));
    }

    #[test]
    fn read_only_transactions_do_not_log() {
        let mut db = TpccDb::new(1);
        let (_, wal1) = db.execute(TxType::OrderStatus, 3, 0);
        let (_, wal2) = db.execute(TxType::StockLevel, 3, 0);
        assert_eq!((wal1, wal2), (0, 0));
        assert!(!TxType::OrderStatus.is_write());
        assert!(TxType::NewOrder.is_write());
    }

    #[test]
    fn mix_approximates_standard_fractions() {
        let mut src = TpccSource::new(4);
        let mut rng = DetRng::seed(77);
        let mut counts = [0u32; 5];
        let mut total_tx = 0u32;
        // Consume whole transactions: the first statement of each reports
        // `statements - 1` remaining.
        while total_tx < 20_000 {
            let first = src.next(&mut rng);
            let tx = TxType::from_op(first.op);
            assert_eq!(first.vsize, tx.statements() - 1);
            for _ in 0..first.vsize {
                src.next(&mut rng);
            }
            counts[tx.op() as usize] += 1;
            total_tx += 1;
        }
        let f = |i: usize| counts[i] as f64 / 20_000.0;
        assert!((f(0) - 0.45).abs() < 0.02, "new-order {}", f(0));
        assert!((f(1) - 0.43).abs() < 0.02, "payment {}", f(1));
        for i in 2..5 {
            assert!((f(i) - 0.04).abs() < 0.01, "tx {i}: {}", f(i));
        }
    }

    #[test]
    fn service_commits_only_on_final_statement() {
        let (mut svc, db) = TpccService::new(1);
        let mut mem = GuestMemory::new(4096);
        let mid = svc.serve(
            &ParsedRequest {
                send_ps: 0,
                key: 1,
                op: TxType::NewOrder.op(),
                vsize: 5, // 5 statements still to come
            },
            &mut mem,
        );
        assert_eq!(mid.wal_bytes, 0);
        assert_eq!(db.borrow().committed(), 0);
        let fin = svc.serve(
            &ParsedRequest {
                send_ps: 0,
                key: 1,
                op: TxType::NewOrder.op(),
                vsize: 0,
            },
            &mut mem,
        );
        assert!(fin.wal_bytes > 0);
        assert!(fin.compute > mid.compute);
        assert_eq!(db.borrow().committed(), 1);
    }

    #[test]
    fn source_emits_whole_transactions() {
        let mut src = TpccSource::new(1);
        let mut rng = DetRng::seed(3);
        let first = src.next(&mut rng);
        let tx = TxType::from_op(first.op);
        assert_eq!(first.vsize, tx.statements() - 1);
        let mut last = first;
        for _ in 0..tx.statements() - 1 {
            last = src.next(&mut rng);
            assert_eq!(TxType::from_op(last.op), tx);
        }
        assert_eq!(last.vsize, 0);
        // Next request starts a fresh transaction.
        let next = src.next(&mut rng);
        assert_eq!(next.vsize, TxType::from_op(next.op).statements() - 1);
    }

    #[test]
    fn tx_type_codec_round_trips() {
        for tx in [
            TxType::NewOrder,
            TxType::Payment,
            TxType::OrderStatus,
            TxType::Delivery,
            TxType::StockLevel,
        ] {
            assert_eq!(TxType::from_op(tx.op()), tx);
        }
    }
}

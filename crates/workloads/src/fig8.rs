//! Fig. 8 runner: memcached under Facebook's ETC workload.
//!
//! Open-loop load sweep against the in-guest key-value store; reports
//! average and 99th-percentile latency per offered rate, from which the
//! 500 µs-SLA throughput crossover is derived.

use svt_core::SwitchMode;
use svt_sim::SimDuration;
use svt_stats::{SweepPoint, SweepSeries};

use crate::harness::{rr_machine_seeded, DEFAULT_LANE_SEED};
use crate::kvstore::{EtcSource, KvService};
use crate::loadgen::ArrivalMode;
use crate::server::{RrServer, ServerConfig};

/// The SLA used in the paper (500 µs on the 99th percentile).
pub const SLA_NS: f64 = 500_000.0;

/// One point of the latency-vs-load sweep.
pub fn memcached_point(mode: SwitchMode, rate_qps: f64, requests: u64) -> SweepPoint {
    memcached_point_seeded(mode, rate_qps, requests, DEFAULT_LANE_SEED)
}

/// [`memcached_point`] with an explicit request-stream seed.
pub fn memcached_point_seeded(
    mode: SwitchMode,
    rate_qps: f64,
    requests: u64,
    seed: u64,
) -> SweepPoint {
    let mean = SimDuration::from_ns_f64(1e9 / rate_qps);
    let source = Box::new(EtcSource::new(100_000));
    let (mut m, stats) = rr_machine_seeded(
        mode,
        ArrivalMode::OpenLoop {
            mean_interarrival: mean,
        },
        requests,
        source,
        seed,
    );
    let cost = m.cost.clone();
    // Serve whatever arrives: under overload some requests are dropped
    // at the RX ring (as with a real NIC), so the run is bounded by time
    // rather than a served-request count.
    let mut cfg = ServerConfig::rr_defaults(&cost, u64::MAX);
    // memcached batches several requests per interrupt at load; the
    // timer is rearmed less often than per request.
    cfg.timer_rearm_every = 4;
    cfg.replenish_every = 2;
    let mut server = RrServer::new(cfg, Box::new(KvService::new(50_000)));
    let horizon = svt_sim::SimTime::ZERO
        + SimDuration::from_ns_f64(requests as f64 * mean.as_ns())
        + SimDuration::from_ms(80);
    m.run_until(&mut server, horizon)
        .expect("memcached run completes");
    let s = stats.borrow();
    // Dropped requests never complete; the server may therefore serve
    // slightly fewer than `requests`. Use what completed.
    SweepPoint {
        load: rate_qps,
        throughput: s.throughput_rps(),
        avg_ns: s.latency.mean(),
        p99_ns: s.latency.p99(),
    }
}

/// Sweeps offered load and returns the latency curve.
pub fn fig8_series(mode: SwitchMode, rates_kqps: &[f64], requests: u64) -> SweepSeries {
    fig8_series_seeded(mode, rates_kqps, requests, DEFAULT_LANE_SEED)
}

/// [`fig8_series`] with an explicit request-stream seed.
pub fn fig8_series_seeded(
    mode: SwitchMode,
    rates_kqps: &[f64],
    requests: u64,
    seed: u64,
) -> SweepSeries {
    let mut series = SweepSeries::new(mode.label());
    for &r in rates_kqps {
        series.push(memcached_point_seeded(mode, r * 1000.0, requests, seed));
    }
    series
}

/// The default sweep of the paper's Fig. 8 x-axis (2–22.5 kQPS), with
/// finer resolution around the SLA knee.
pub fn default_rates() -> Vec<f64> {
    vec![
        2.0, 4.0, 5.0, 6.0, 6.5, 7.0, 7.5, 8.0, 8.5, 9.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.5,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_latency_is_flat_and_finite() {
        let p = memcached_point(SwitchMode::Baseline, 2_000.0, 150);
        assert!(
            p.avg_ns > 50_000.0 && p.avg_ns < 500_000.0,
            "avg {}",
            p.avg_ns
        );
        assert!(p.p99_ns >= p.avg_ns);
        assert!(p.throughput > 1_000.0);
    }

    #[test]
    fn latency_grows_with_load() {
        let low = memcached_point(SwitchMode::Baseline, 2_000.0, 150);
        let high = memcached_point(SwitchMode::Baseline, 9_000.0, 400);
        assert!(
            high.avg_ns > low.avg_ns,
            "low {} high {}",
            low.avg_ns,
            high.avg_ns
        );
    }

    #[test]
    fn svt_extends_the_sla_envelope() {
        // At a rate the baseline struggles with, SW SVt shows lower p99.
        let b = memcached_point(SwitchMode::Baseline, 7_000.0, 300);
        let s = memcached_point(SwitchMode::SwSvt, 7_000.0, 300);
        assert!(s.p99_ns < b.p99_ns, "baseline {} sw {}", b.p99_ns, s.p99_ns);
    }
}

//! The in-guest request/response server.
//!
//! One generic [`RrServer`] program plays netserver, memcached and the
//! TPC-C backend: it drains requests from the RX virtqueue, runs a
//! pluggable [`ServiceModel`] (which may mutate real application state
//! and demand a write-ahead-log write to virtio-blk before replying),
//! and posts replies on the TX virtqueue. Every architectural side
//! effect of a real server is reproduced: EOIs after each interrupt,
//! doorbell kicks, RX-buffer replenishing, TSC-deadline rearming and
//! `hlt` idling — these are exactly the trap sources the paper's Fig. 7/8/9
//! measurements are made of.

use std::collections::{HashMap, VecDeque};

use svt_arch::{MSR_TSC_DEADLINE, MSR_X2APIC_EOI, VECTOR_TIMER, VECTOR_VIRTIO};
use svt_hv::{GuestCtx, GuestOp, GuestProgram};
use svt_mem::{Gpa, GuestMemory, Hpa};
use svt_sim::SimDuration;
use svt_virtio::{Virtqueue, BLK_T_OUT};

use crate::layout;
use crate::loadgen::regs;

/// Interrupt vector of the block device (distinct from the NIC's).
pub const VECTOR_BLK: u8 = 0x51;

/// A request parsed from an RX buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Client departure timestamp (echoed in the reply).
    pub send_ps: u64,
    /// Key identifier.
    pub key: u64,
    /// Operation code.
    pub op: u32,
    /// Value size.
    pub vsize: u32,
}

/// What serving one request requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeOutput {
    /// Application processing time.
    pub compute: SimDuration,
    /// Reply payload size.
    pub reply_len: u32,
    /// Bytes to persist to the WAL before replying (0 = none).
    pub wal_bytes: u32,
    /// Synchronous data reads (buffer-cache misses) before replying.
    pub disk_reads: u32,
}

/// Application logic behind the server.
pub trait ServiceModel: std::fmt::Debug {
    /// Serves one request, possibly mutating real application state.
    fn serve(&mut self, req: &ParsedRequest, mem: &mut GuestMemory) -> ServeOutput;
}

/// netserver's echo service (netperf TCP_RR).
#[derive(Debug, Clone)]
pub struct EchoService {
    /// Per-request application work.
    pub compute: SimDuration,
    /// Reply size in bytes.
    pub reply_len: u32,
}

impl ServiceModel for EchoService {
    fn serve(&mut self, _req: &ParsedRequest, _mem: &mut GuestMemory) -> ServeOutput {
        ServeOutput {
            compute: self.compute,
            reply_len: self.reply_len,
            ..ServeOutput::default()
        }
    }
}

/// Server behaviour knobs: the architectural-event profile.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// RX buffers kept posted.
    pub rx_depth: u16,
    /// Guest network-stack time per received packet.
    pub netstack_rx: SimDuration,
    /// Guest network-stack time per sent packet.
    pub netstack_tx: SimDuration,
    /// Issue an EOI MSR write after every interrupt.
    pub eoi: bool,
    /// Rearm the TSC-deadline timer every n requests (0 = never) — the
    /// TCP retransmit-timer traffic behind the paper's MSR_WRITE profile.
    pub timer_rearm_every: u64,
    /// Kick the RX-notify doorbell every n requests (0 = never).
    pub replenish_every: u64,
    /// Stop after serving this many requests.
    pub expected: u64,
    /// Load-generator NIC MMIO base.
    pub net_mmio: Gpa,
    /// Block-device MMIO base, when the service writes a WAL.
    pub blk_mmio: Option<Gpa>,
    /// Which vCPU's workload lane ([`layout::lane`]) the server's queues
    /// and buffer pools live in. Lane 0 is the historical layout.
    pub lane: usize,
}

impl ServerConfig {
    /// netperf-like defaults against the default load generator.
    pub fn rr_defaults(cost: &svt_sim::CostModel, expected: u64) -> Self {
        ServerConfig {
            rx_depth: 16,
            netstack_rx: cost.netstack_per_packet,
            netstack_tx: cost.netstack_per_packet,
            eoi: true,
            timer_rearm_every: 1,
            replenish_every: 1,
            expected,
            net_mmio: layout::NET_MMIO,
            blk_mmio: None,
            lane: 0,
        }
    }

    /// [`ServerConfig::rr_defaults`] placed on vCPU `lane`'s private
    /// workload lane: queues, buffer pools and the NIC MMIO window all
    /// come from [`layout::lane`].
    pub fn rr_on_lane(cost: &svt_sim::CostModel, expected: u64, lane: usize) -> Self {
        let l = layout::lane(lane);
        ServerConfig {
            net_mmio: l.net_mmio,
            lane,
            ..ServerConfig::rr_defaults(cost, expected)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Init,
    Ready,
    AwaitDisk,
    Finished,
}

#[derive(Debug)]
struct PreparedReply {
    send_ps: u64,
    reply_len: u32,
}

/// The request/response server guest program.
#[derive(Debug)]
pub struct RrServer {
    cfg: ServerConfig,
    lane: layout::LaneLayout,
    service: Box<dyn ServiceModel>,
    tx: Virtqueue,
    rx: Virtqueue,
    blk: Option<Virtqueue>,
    ops: VecDeque<GuestOp>,
    phase: Phase,
    rx_slots: HashMap<u16, u64>,
    tx_free: Vec<u64>,
    tx_inflight: HashMap<u16, u64>,
    queue: VecDeque<ParsedRequest>,
    eoi_owed: u32,
    served: u64,
    since_replenish: u64,
    since_timer: u64,
    wal_reply: Option<PreparedReply>,
    wal_done: bool,
    reads_remaining: u32,
    wal_pending: u32,
    pending_repost: Vec<u64>,
    req_seq: u64,
    cur_req: Option<u64>,
    end_pending: VecDeque<u64>,
}

impl RrServer {
    /// Creates the server. Queue geometry comes from the [`layout`] lane
    /// named by `cfg.lane` (lane 0 is the historical single-vCPU layout).
    pub fn new(cfg: ServerConfig, service: Box<dyn ServiceModel>) -> Self {
        let lane = layout::lane(cfg.lane);
        let blk = cfg.blk_mmio.map(|_| Virtqueue::new(lane.blk_queue, 32));
        RrServer {
            cfg,
            lane,
            service,
            tx: Virtqueue::new(lane.tx_queue, 32),
            rx: Virtqueue::new(lane.rx_queue, 32),
            blk,
            ops: VecDeque::new(),
            phase: Phase::Init,
            rx_slots: HashMap::new(),
            tx_free: (0..16)
                .map(|i| lane.tx_bufs.0 + i * layout::BUF_SIZE)
                .collect(),
            tx_inflight: HashMap::new(),
            queue: VecDeque::new(),
            eoi_owed: 0,
            served: 0,
            since_replenish: 0,
            since_timer: 0,
            wal_reply: None,
            wal_done: false,
            reads_remaining: 0,
            wal_pending: 0,
            pending_repost: Vec::new(),
            req_seq: 0,
            cur_req: None,
            end_pending: VecDeque::new(),
        }
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn post_rx(&mut self, mem: &mut GuestMemory, addr: u64) {
        let head = self
            .rx
            .driver_add(mem, &[(addr, layout::BUF_SIZE as u32, true)])
            .expect("rx ring in RAM");
        self.rx_slots.insert(head, addr);
    }

    fn emit_reply(&mut self, mem: &mut GuestMemory, reply: PreparedReply) {
        if self.tx_free.is_empty() {
            // Opportunistic reclaim on the xmit path, as real virtio-net
            // drivers do: consume completed TX entries without waiting for
            // an interrupt.
            while let Some((head, _)) = self.tx.driver_take_used(mem).expect("tx ring in RAM") {
                if let Some(b) = self.tx_inflight.remove(&head) {
                    self.tx_free.push(b);
                }
            }
        }
        let buf = self.tx_free.pop().expect("tx buffer pool exhausted");
        mem.write_u64(Hpa(buf), reply.send_ps)
            .expect("tx buf in RAM");
        let head = self
            .tx
            .driver_add(mem, &[(buf, reply.reply_len.max(8), false)])
            .expect("tx ring in RAM");
        self.tx_inflight.insert(head, buf);
        // The reply is on the wire once the queued TX ops drain; the
        // request's causal anchor closes then (see `step`).
        if let Some(k) = self.cur_req.take() {
            self.end_pending.push_back(k);
        }
        self.served += 1;
        self.since_replenish += 1;
        self.since_timer += 1;
        // RX refill notification and the TCP retransmit timer are armed
        // *before* the reply leaves (the refill happens in the NAPI poll,
        // the timer when the segment is queued) — they sit on the
        // request's critical path.
        if self.cfg.replenish_every > 0 && self.since_replenish >= self.cfg.replenish_every {
            self.since_replenish = 0;
            self.ops.push_back(GuestOp::MmioWrite {
                gpa: self.cfg.net_mmio + regs::RX_NOTIFY,
                value: 1,
            });
        }
        if self.cfg.timer_rearm_every > 0 && self.since_timer >= self.cfg.timer_rearm_every {
            self.since_timer = 0;
            // Always pushed out; effectively never fires under traffic.
            self.ops.push_back(GuestOp::MsrWrite {
                msr: MSR_TSC_DEADLINE,
                value: u64::MAX / 2,
            });
        }
        self.ops.push_back(GuestOp::Compute(self.cfg.netstack_tx));
        self.ops.push_back(GuestOp::MmioWrite {
            gpa: self.cfg.net_mmio + regs::TX_NOTIFY,
            value: 1,
        });
    }

    fn begin_request(&mut self, mem: &mut GuestMemory, req: ParsedRequest) {
        self.ops.push_back(GuestOp::Compute(self.cfg.netstack_rx));
        let out = self.service.serve(&req, mem);
        if !out.compute.is_zero() {
            self.ops.push_back(GuestOp::Compute(out.compute));
        }
        let reply = PreparedReply {
            send_ps: req.send_ps,
            reply_len: out.reply_len,
        };
        if out.wal_bytes > 0 || out.disk_reads > 0 {
            self.reads_remaining = out.disk_reads;
            self.wal_pending = out.wal_bytes;
            self.wal_reply = Some(reply);
            self.wal_done = false;
            self.phase = Phase::AwaitDisk;
            self.next_disk_op(mem);
        } else {
            self.emit_reply(mem, reply);
        }
    }

    /// Issues the next synchronous disk operation of the current request:
    /// first the buffer-miss reads, then the WAL write.
    fn next_disk_op(&mut self, mem: &mut GuestMemory) {
        let blk_mmio = self.cfg.blk_mmio.expect("disk I/O requires a block device");
        let blk = self.blk.as_mut().expect("blk queue configured");
        let hdr = self.lane.blk_bufs.0;
        let data = self.lane.blk_bufs.0 + 0x1000;
        let status = self.lane.blk_bufs.0 + 0x80;
        let (ty, len) = if self.reads_remaining > 0 {
            self.reads_remaining -= 1;
            (svt_virtio::BLK_T_IN, 8192)
        } else {
            let len = self.wal_pending;
            self.wal_pending = 0;
            (BLK_T_OUT, len)
        };
        mem.write_u32(Hpa(hdr), ty).expect("blk buf in RAM");
        mem.write_u64(Hpa(hdr + 8), (self.served * 29) % (1 << 20))
            .expect("blk buf in RAM");
        blk.driver_add(
            mem,
            &[
                (hdr, 16, false),
                (data, len.max(1), ty == svt_virtio::BLK_T_IN),
                (status, 1, true),
            ],
        )
        .expect("blk ring in RAM");
        self.ops.push_back(GuestOp::MmioWrite {
            gpa: blk_mmio,
            value: 1,
        });
    }

    fn parse_rx(&mut self, mem: &GuestMemory, head: u16) -> Option<ParsedRequest> {
        let addr = self.rx_slots.remove(&head)?;
        let req = ParsedRequest {
            send_ps: mem.read_u64(Hpa(addr)).ok()?,
            key: mem.read_u64(Hpa(addr + 8)).ok()?,
            op: mem.read_u32(Hpa(addr + 16)).ok()?,
            vsize: mem.read_u32(Hpa(addr + 20)).ok()?,
        };
        // Buffer is immediately reusable; real drivers re-post in batches.
        self.pending_repost.push(addr);
        Some(req)
    }

    fn drain_net_irq(&mut self, mem: &mut GuestMemory) {
        // Reclaim transmitted buffers.
        while let Some((head, _)) = self.tx.driver_take_used(mem).expect("tx ring in RAM") {
            if let Some(buf) = self.tx_inflight.remove(&head) {
                self.tx_free.push(buf);
            }
        }
        // Collect delivered requests.
        while let Some((head, _)) = self.rx.driver_take_used(mem).expect("rx ring in RAM") {
            if let Some(req) = self.parse_rx(mem, head) {
                self.queue.push_back(req);
            }
        }
        // Re-post consumed buffers.
        let reposts = std::mem::take(&mut self.pending_repost);
        for addr in reposts {
            self.post_rx(mem, addr);
        }
    }
}

impl GuestProgram for RrServer {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if self.ops.is_empty() {
            // All ops queued on behalf of replied-to requests (netstack
            // compute, doorbell kicks and their traps) have executed:
            // close those requests' causal anchors.
            while let Some(k) = self.end_pending.pop_front() {
                ctx.obs.causal.request_end(k, ctx.now);
            }
        }
        if let Some(op) = self.ops.pop_front() {
            return op;
        }
        if self.eoi_owed > 0 && self.cfg.eoi {
            self.eoi_owed -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        self.eoi_owed = 0;
        match self.phase {
            Phase::Init => {
                self.rx.init(ctx.mem).expect("rx ring in RAM");
                self.tx.init(ctx.mem).expect("tx ring in RAM");
                if let Some(blk) = self.blk.as_mut() {
                    blk.init(ctx.mem).expect("blk ring in RAM");
                }
                for i in 0..self.cfg.rx_depth as u64 {
                    let addr = self.lane.rx_bufs.0 + i * layout::BUF_SIZE;
                    self.post_rx(ctx.mem, addr);
                }
                self.phase = Phase::Ready;
                // No Hlt is queued here: whether to idle is decided fresh
                // on the next step, after any already-delivered interrupt
                // has been drained (the classic sti;hlt race).
                GuestOp::MmioWrite {
                    gpa: self.cfg.net_mmio + regs::START,
                    value: 1,
                }
            }
            Phase::AwaitDisk => {
                if self.wal_done {
                    self.wal_done = false;
                    if self.reads_remaining > 0 || self.wal_pending > 0 {
                        self.next_disk_op(ctx.mem);
                        self.step(ctx)
                    } else {
                        self.phase = Phase::Ready;
                        let reply = self.wal_reply.take().expect("reply prepared");
                        self.emit_reply(ctx.mem, reply);
                        self.step(ctx)
                    }
                } else {
                    GuestOp::Hlt
                }
            }
            Phase::Ready => {
                if self.served >= self.cfg.expected {
                    self.phase = Phase::Finished;
                    return GuestOp::Done;
                }
                if let Some(req) = self.queue.pop_front() {
                    let key = ((self.cfg.lane as u64) << 32) | self.req_seq;
                    self.req_seq += 1;
                    ctx.obs.causal.request_start(key, ctx.now);
                    self.cur_req = Some(key);
                    self.begin_request(ctx.mem, req);
                    self.step(ctx)
                } else {
                    GuestOp::Hlt
                }
            }
            Phase::Finished => GuestOp::Done,
        }
    }

    fn interrupt(&mut self, vector: u8, ctx: &mut GuestCtx<'_>) {
        self.eoi_owed += 1;
        match vector {
            VECTOR_VIRTIO => self.drain_net_irq(ctx.mem),
            VECTOR_BLK => {
                if let Some(blk) = self.blk.as_mut() {
                    while blk
                        .driver_take_used(ctx.mem)
                        .expect("blk ring in RAM")
                        .is_some()
                    {
                        self.wal_done = true;
                    }
                }
            }
            VECTOR_TIMER => {}
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "rr-server"
    }
}

//! Fig. 7 runners: the I/O subsystem benchmarks.
//!
//! Network latency/bandwidth (netperf TCP_RR / TCP_STREAM) and disk
//! random-read/random-write latency/bandwidth (ioping / fio), each under
//! the three switch engines.

use svt_core::{nested_machine, SwitchMode};
use svt_sim::SimDuration;
use svt_virtio::{NetConfig, VirtioNet, Virtqueue};

use crate::disk::{DiskBench, DiskMode};
use crate::harness::{attach_blk, rr_arrival, rr_machine, QUEUE_SIZE};
use crate::layout;
use crate::loadgen::{FixedSource, Request};
use crate::server::{EchoService, RrServer, ServerConfig};
use crate::stream::StreamSender;

/// One subsystem measurement across the three engines.
#[derive(Debug, Clone, PartialEq)]
pub struct IoRow {
    /// Benchmark name as in Fig. 7.
    pub name: &'static str,
    /// Measurement unit of the baseline column.
    pub unit: &'static str,
    /// Whether higher is better (bandwidths) or lower (latencies).
    pub higher_better: bool,
    /// Absolute baseline value (the number printed on Fig. 7's bars).
    pub baseline: f64,
    /// SW SVt speedup vs baseline.
    pub sw_speedup: f64,
    /// HW SVt speedup vs baseline.
    pub hw_speedup: f64,
    /// The paper's (baseline, SW, HW) triple for reference.
    pub paper: (f64, f64, f64),
}

/// netperf TCP_RR: mean round-trip latency in µs for 1-byte payloads.
pub fn net_rr_latency_us(mode: SwitchMode, transactions: u64) -> f64 {
    let source = Box::new(FixedSource {
        request: Request {
            op: 0,
            key: 1,
            vsize: 1,
        },
    });
    let (mut m, stats) = {
        let cost = svt_sim::CostModel::default();
        rr_machine(mode, rr_arrival(&cost), transactions, source)
    };
    let cost = m.cost.clone();
    let mut server = RrServer::new(
        ServerConfig::rr_defaults(&cost, transactions),
        Box::new(EchoService {
            compute: SimDuration::from_us(2),
            reply_len: 1,
        }),
    );
    m.run(&mut server).expect("RR run completes");
    let s = stats.borrow();
    s.latency.mean() / 1000.0
}

/// netperf TCP_STREAM: goodput in Mbps for 16 KB sends.
pub fn net_stream_mbps(mode: SwitchMode, packets: u64) -> f64 {
    let mut m = nested_machine(mode);
    let cost = m.cost.clone();
    let net = VirtioNet::new(
        NetConfig::stream(&cost, 16),
        Virtqueue::new(layout::TX_QUEUE, QUEUE_SIZE),
        Virtqueue::new(layout::RX_QUEUE, QUEUE_SIZE),
    );
    m.add_device(Box::new(net));
    let mut sender = StreamSender::new(&cost, 16_384, 16, packets);
    m.run(&mut sender).expect("stream run completes");
    sender.throughput_mbps()
}

/// ioping-style disk latency in µs (512 B random accesses, QD 1).
pub fn disk_latency_us(mode: SwitchMode, write: bool, ops: u64) -> f64 {
    let mut m = nested_machine(mode);
    attach_blk(&mut m);
    let cost = m.cost.clone();
    let mut bench = DiskBench::new(&cost, DiskMode::Latency, write, 512, ops);
    m.run(&mut bench).expect("disk run completes");
    bench.latency().mean() / 1000.0
}

/// fio-style disk bandwidth in KB/s (4 KB random accesses, QD 4).
pub fn disk_bandwidth_kb_s(mode: SwitchMode, write: bool, ops: u64) -> f64 {
    let mut m = nested_machine(mode);
    attach_blk(&mut m);
    let cost = m.cost.clone();
    let mut bench = DiskBench::new(&cost, DiskMode::Bandwidth { qd: 4 }, write, 4096, ops);
    m.run(&mut bench).expect("disk run completes");
    bench.bandwidth_kb_s()
}

/// Runs all six Fig. 7 measurements. `scale` divides the default
/// iteration counts (use >1 for quick runs).
pub fn fig7(scale: u64) -> Vec<IoRow> {
    let n_rr = (400 / scale).max(20);
    let n_pkt = (600 / scale).max(30);
    let n_io = (400 / scale).max(20);
    let run3 = |f: &dyn Fn(SwitchMode) -> f64| {
        (
            f(SwitchMode::Baseline),
            f(SwitchMode::SwSvt),
            f(SwitchMode::HwSvt),
        )
    };

    let mut rows = Vec::new();
    let (b, s, h) = run3(&|m| net_rr_latency_us(m, n_rr));
    rows.push(IoRow {
        name: "Network latency",
        unit: "usec",
        higher_better: false,
        baseline: b,
        sw_speedup: b / s,
        hw_speedup: b / h,
        paper: (163.0, 1.10, 2.38),
    });
    let (b, s, h) = run3(&|m| net_stream_mbps(m, n_pkt));
    rows.push(IoRow {
        name: "Network bandwidth",
        unit: "Mbps",
        higher_better: true,
        baseline: b,
        sw_speedup: s / b,
        hw_speedup: h / b,
        paper: (9387.0, 1.00, 1.12),
    });
    let (b, s, h) = run3(&|m| disk_latency_us(m, false, n_io));
    rows.push(IoRow {
        name: "Disk randrd latency",
        unit: "usec",
        higher_better: false,
        baseline: b,
        sw_speedup: b / s,
        hw_speedup: b / h,
        paper: (126.0, 1.30, 2.18),
    });
    let (b, s, h) = run3(&|m| disk_bandwidth_kb_s(m, false, n_io));
    rows.push(IoRow {
        name: "Disk randrd bandwidth",
        unit: "KB/s",
        higher_better: true,
        baseline: b,
        sw_speedup: s / b,
        hw_speedup: h / b,
        paper: (87_136.0, 1.55, 2.31),
    });
    let (b, s, h) = run3(&|m| disk_latency_us(m, true, n_io));
    rows.push(IoRow {
        name: "Disk randwr latency",
        unit: "usec",
        higher_better: false,
        baseline: b,
        sw_speedup: b / s,
        hw_speedup: b / h,
        paper: (179.0, 1.05, 2.26),
    });
    let (b, s, h) = run3(&|m| disk_bandwidth_kb_s(m, true, n_io));
    rows.push(IoRow {
        name: "Disk randwr bandwidth",
        unit: "KB/s",
        higher_better: true,
        baseline: b,
        sw_speedup: s / b,
        hw_speedup: h / b,
        paper: (55_769.0, 1.18, 2.60),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_round_trips_complete() {
        let lat = net_rr_latency_us(SwitchMode::Baseline, 25);
        assert!(lat > 50.0 && lat < 400.0, "RR latency {lat}us");
    }

    #[test]
    fn svt_improves_rr_latency() {
        let b = net_rr_latency_us(SwitchMode::Baseline, 25);
        let sw = net_rr_latency_us(SwitchMode::SwSvt, 25);
        let hw = net_rr_latency_us(SwitchMode::HwSvt, 25);
        assert!(hw < sw && sw < b, "{b} {sw} {hw}");
    }

    #[test]
    fn stream_reaches_high_utilization() {
        let bw = net_stream_mbps(SwitchMode::Baseline, 120);
        assert!(bw > 5_000.0 && bw <= 10_000.0, "STREAM {bw} Mbps");
    }

    #[test]
    fn disk_latency_sane_and_improved_by_svt() {
        let b = disk_latency_us(SwitchMode::Baseline, false, 30);
        let hw = disk_latency_us(SwitchMode::HwSvt, false, 30);
        assert!(b > 30.0 && b < 300.0, "disk randrd {b}us");
        assert!(hw < b);
    }

    #[test]
    fn disk_writes_slower_than_reads() {
        // The paper's randwr latency (179us) exceeds randrd (126us).
        let rd = disk_latency_us(SwitchMode::Baseline, false, 30);
        let wr = disk_latency_us(SwitchMode::Baseline, true, 30);
        assert!(wr >= rd * 0.9, "rd {rd} wr {wr}");
    }
}

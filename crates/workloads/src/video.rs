//! Video playback (Fig. 10): a soft-realtime frame-deadline workload.
//!
//! Models mplayer playing a 4K movie: per frame, decode work; periodically
//! a buffered chunk of the file is read from virtio-blk in a burst of real
//! read requests; presentation is paced by the TSC-deadline timer. A frame
//! is *dropped* when its presentation interrupt arrives later than a
//! tolerance relative to the frame period — which happens when the
//! deadline collides with the virtualization-heavy disk burst, exactly the
//! interference the paper attributes to `EPT_MISCONFIG` and `MSR_WRITE`
//! handling (§ 6.3.3).

use svt_sim::FnvHashMap;

use svt_arch::{MSR_TSC_DEADLINE, MSR_X2APIC_EOI, VECTOR_TIMER};
use svt_hv::{GuestCtx, GuestOp, GuestProgram};
use svt_mem::Hpa;
use svt_sim::{DetRng, SimDuration, SimTime};
use svt_virtio::{Virtqueue, BLK_T_IN};

use crate::layout;
use crate::server::VECTOR_BLK;

/// Playback configuration.
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// Frames per second (24 / 60 / 120 in the paper).
    pub fps: u32,
    /// Playback length.
    pub duration: SimDuration,
    /// Mean decode time per frame.
    pub decode_mean: SimDuration,
    /// Decode-time jitter (standard deviation).
    pub decode_jitter: SimDuration,
    /// Wall-clock period between file-chunk reads.
    pub chunk_period: SimDuration,
    /// Read requests per chunk.
    pub chunk_requests: u32,
    /// Bytes per read request.
    pub request_bytes: u32,
    /// Lateness tolerance as a fraction of the frame period.
    pub tolerance: f64,
}

impl VideoConfig {
    /// The paper's setup: first 5 minutes of a 4K movie, repackaged to the
    /// given frame rate. Decode costs ~3.2 ms/frame at the paper's "L2 is
    /// idle for 61 % of the time" at 120 FPS.
    pub fn isca19(fps: u32) -> Self {
        VideoConfig {
            fps,
            duration: SimDuration::from_secs(300),
            decode_mean: SimDuration::from_us(3200),
            decode_jitter: SimDuration::from_us(600),
            chunk_period: SimDuration::from_ms(500),
            chunk_requests: 52,
            request_bytes: 65_536,
            tolerance: 0.10,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Decode,
    DiskBurst,
    AwaitTimer,
    Finished,
}

/// The video-player guest program.
#[derive(Debug)]
pub struct VideoPlayer {
    cfg: VideoConfig,
    rng: DetRng,
    queue: Virtqueue,
    phase: Phase,
    pending: Vec<GuestOp>,
    eoi_owed: u32,
    next_present: SimTime,
    next_chunk: SimTime,
    frames_played: u64,
    frames_dropped: u64,
    burst_remaining: u32,
    inflight: FnvHashMap<u16, ()>,
    init_done: bool,
    total_frames: u64,
    max_lateness: SimDuration,
}

impl VideoPlayer {
    /// Creates the player with a deterministic seed.
    pub fn new(cfg: VideoConfig, seed: u64) -> Self {
        let total_frames = (cfg.duration.as_secs() * cfg.fps as f64) as u64;
        VideoPlayer {
            cfg,
            rng: DetRng::seed(seed),
            queue: Virtqueue::new(layout::BLK_QUEUE, 32),
            phase: Phase::Decode,
            pending: Vec::new(),
            eoi_owed: 0,
            next_present: SimTime::ZERO,
            next_chunk: SimTime::ZERO,
            frames_played: 0,
            frames_dropped: 0,
            burst_remaining: 0,
            inflight: FnvHashMap::default(),
            init_done: false,
            total_frames,
            max_lateness: SimDuration::ZERO,
        }
    }

    /// Frames presented (including dropped ones).
    pub fn frames_played(&self) -> u64 {
        self.frames_played
    }

    /// Frames whose presentation missed the tolerance.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Worst presentation lateness observed.
    pub fn max_lateness(&self) -> SimDuration {
        self.max_lateness
    }

    fn period(&self) -> SimDuration {
        SimDuration::from_ns_f64(1e9 / self.cfg.fps as f64)
    }

    fn submit_read(&mut self, ctx: &mut GuestCtx<'_>) {
        let hdr = layout::BLK_BUFS.0;
        let data = layout::BLK_BUFS.0 + 0x1000;
        let status = layout::BLK_BUFS.0 + 0x100;
        ctx.mem.write_u32(Hpa(hdr), BLK_T_IN).expect("hdr in RAM");
        ctx.mem
            .write_u64(Hpa(hdr + 8), self.rng.below(1 << 22))
            .expect("hdr in RAM");
        let head = self
            .queue
            .driver_add(
                ctx.mem,
                &[
                    (hdr, 16, false),
                    (data, self.cfg.request_bytes, true),
                    (status, 1, true),
                ],
            )
            .expect("blk ring in RAM");
        self.inflight.insert(head, ());
        self.pending.push(GuestOp::MmioWrite {
            gpa: layout::BLK_MMIO,
            value: 1,
        });
    }

    fn present_frame(&mut self, now: SimTime) {
        let lateness = now.saturating_since(self.next_present);
        let tolerance = SimDuration::from_ns_f64(self.period().as_ns() * self.cfg.tolerance);
        self.frames_played += 1;
        self.max_lateness = self.max_lateness.max(lateness);
        if lateness > tolerance {
            self.frames_dropped += 1;
        }
        self.next_present += self.period();
    }
}

impl GuestProgram for VideoPlayer {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        if self.eoi_owed > 0 {
            self.eoi_owed -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if !self.init_done {
            self.init_done = true;
            self.queue.init(ctx.mem).expect("blk ring in RAM");
            self.next_present = ctx.now + self.period();
            self.next_chunk = ctx.now + self.cfg.chunk_period;
            self.phase = Phase::Decode;
            let d = self
                .rng
                .norm_duration(self.cfg.decode_mean, self.cfg.decode_jitter);
            return GuestOp::Compute(d);
        }
        match self.phase {
            Phase::Decode => {
                if self.frames_played >= self.total_frames {
                    self.phase = Phase::Finished;
                    return GuestOp::Done;
                }
                if ctx.now >= self.next_chunk {
                    self.next_chunk += self.cfg.chunk_period;
                    // Chunk sizes vary with the (VBR) video bitrate.
                    let dither = self.rng.below(17) as u32;
                    self.burst_remaining = (self.cfg.chunk_requests - 8) + dither;
                    self.phase = Phase::DiskBurst;
                    self.submit_read(ctx);
                    return self.pending.pop().expect("kick queued");
                }
                // Frame decoded; pace to the presentation deadline.
                self.phase = Phase::AwaitTimer;
                if ctx.now >= self.next_present {
                    // Decode overran the deadline: present immediately,
                    // late.
                    self.present_frame(ctx.now);
                    self.phase = Phase::Decode;
                    let d = self
                        .rng
                        .norm_duration(self.cfg.decode_mean, self.cfg.decode_jitter);
                    return GuestOp::Compute(d);
                }
                GuestOp::MsrWrite {
                    msr: MSR_TSC_DEADLINE,
                    value: self.next_present.as_ps(),
                }
            }
            Phase::AwaitTimer => GuestOp::Hlt,
            Phase::DiskBurst => GuestOp::Hlt,
            Phase::Finished => GuestOp::Done,
        }
    }

    fn interrupt(&mut self, vector: u8, ctx: &mut GuestCtx<'_>) {
        self.eoi_owed += 1;
        match vector {
            VECTOR_TIMER if self.phase == Phase::AwaitTimer => {
                self.present_frame(ctx.now);
                self.phase = Phase::Decode;
                let d = self
                    .rng
                    .norm_duration(self.cfg.decode_mean, self.cfg.decode_jitter);
                self.pending.push(GuestOp::Compute(d));
            }
            VECTOR_BLK | svt_arch::VECTOR_VIRTIO => {
                while let Some((head, _)) = self.queue.driver_take_used(ctx.mem).expect("blk ring")
                {
                    self.inflight.remove(&head);
                }
                if self.phase == Phase::DiskBurst {
                    self.burst_remaining = self.burst_remaining.saturating_sub(1);
                    if self.burst_remaining == 0 {
                        self.phase = Phase::Decode;
                    } else {
                        // Next request of the burst.
                        // (Submitted from interrupt context in real drivers
                        // via the completion path; here queued as ops.)
                        self.submit_read(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "video-player"
    }
}

//! The memcached-like key-value store and Facebook's ETC workload.
//!
//! A real sharded hash-map store runs inside L2 behind the generic
//! [`RrServer`](crate::server::RrServer); the [`EtcSource`] request stream
//! follows the published shape of Facebook's ETC pool (Atikoglu et al.,
//! SIGMETRICS'12): GET-dominated (~95 %), small keys, and a heavy-tailed
//! value-size distribution with Zipf-like key popularity.

use svt_sim::FnvHashMap;

use svt_mem::GuestMemory;
use svt_sim::{DetRng, SimDuration};

use crate::loadgen::{Request, RequestSource};
use crate::server::{ParsedRequest, ServeOutput, ServiceModel};

/// Operation codes on the wire.
pub const OP_GET: u32 = 0;
/// SET operation code.
pub const OP_SET: u32 = 1;

/// A sharded in-memory key-value store.
///
/// # Examples
///
/// ```
/// use svt_workloads::KvStore;
///
/// let mut kv = KvStore::new(16);
/// kv.set(7, vec![1, 2, 3]);
/// assert_eq!(kv.get(7).map(|v| v.len()), Some(3));
/// assert_eq!(kv.get(8), None);
/// ```
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<FnvHashMap<u64, Vec<u8>>>,
}

impl KvStore {
    /// Creates a store with `shards` hash shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0);
        KvStore {
            shards: (0..shards).map(|_| FnvHashMap::default()).collect(),
        }
    }

    fn shard(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Looks a key up.
    pub fn get(&self, key: u64) -> Option<&Vec<u8>> {
        self.shards[self.shard(key)].get(&key)
    }

    /// Stores a value.
    pub fn set(&mut self, key: u64, value: Vec<u8>) {
        let s = self.shard(key);
        self.shards[s].insert(key, value);
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FnvHashMap::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The ETC-like request stream.
#[derive(Debug, Clone)]
pub struct EtcSource {
    keys: u64,
    get_fraction: f64,
    zipf_skew: f64,
}

impl EtcSource {
    /// ETC defaults: 95/5 GET/SET over `keys` keys with skew ~0.99.
    pub fn new(keys: u64) -> Self {
        EtcSource {
            keys,
            get_fraction: 0.95,
            zipf_skew: 0.99,
        }
    }

    /// ETC value sizes: dominated by small values with a heavy tail
    /// (~90 % under 1 KB, occasional multi-KB values).
    fn value_size(&self, rng: &mut DetRng) -> u32 {
        let u = rng.unit();
        if u < 0.40 {
            rng.range(2, 64) as u32
        } else if u < 0.90 {
            rng.range(64, 1024) as u32
        } else if u < 0.99 {
            rng.range(1024, 4096) as u32
        } else {
            rng.range(4096, 16_384) as u32
        }
    }
}

impl RequestSource for EtcSource {
    fn next(&mut self, rng: &mut DetRng) -> Request {
        let key = rng.zipf(self.keys, self.zipf_skew);
        let op = if rng.chance(self.get_fraction) {
            OP_GET
        } else {
            OP_SET
        };
        Request {
            op,
            key,
            vsize: self.value_size(rng),
        }
    }
}

/// The memcached service: real store operations plus a calibrated
/// per-request processing cost.
#[derive(Debug)]
pub struct KvService {
    store: KvStore,
    /// Fixed request-parsing + hashing cost.
    pub base_cost: SimDuration,
    /// Per-value-byte memcpy cost.
    pub per_byte: SimDuration,
    hits: u64,
    misses: u64,
    sets: u64,
}

impl KvService {
    /// A service over a fresh store, pre-warmed with `warm_keys` values.
    pub fn new(warm_keys: u64) -> Self {
        let mut store = KvStore::new(64);
        for k in 0..warm_keys {
            // Deterministic warm sizes spread over the ETC range.
            let size = 64 + (k * 37) % 1024;
            store.set(k, vec![0xAB; size as usize]);
        }
        KvService {
            store,
            base_cost: SimDuration::from_ns(1800),
            per_byte: SimDuration::from_ps(400),
            hits: 0,
            misses: 0,
            sets: 0,
        }
    }

    /// (hits, misses, sets) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.sets)
    }

    /// The underlying store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }
}

impl ServiceModel for KvService {
    fn serve(&mut self, req: &ParsedRequest, _mem: &mut GuestMemory) -> ServeOutput {
        match req.op {
            OP_SET => {
                self.sets += 1;
                self.store.set(req.key, vec![0xCD; req.vsize as usize]);
                ServeOutput {
                    compute: self.base_cost + self.per_byte * req.vsize as u64,
                    reply_len: 8,
                    ..ServeOutput::default()
                }
            }
            _ => {
                let (found, len) = match self.store.get(req.key) {
                    Some(v) => (true, v.len() as u32),
                    None => (false, 0),
                };
                if found {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
                ServeOutput {
                    compute: self.base_cost + self.per_byte * len as u64,
                    reply_len: 8 + len,
                    ..ServeOutput::default()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trip_and_sharding() {
        let mut kv = KvStore::new(4);
        for k in 0..100 {
            kv.set(k, vec![k as u8; (k % 32) as usize + 1]);
        }
        assert_eq!(kv.len(), 100);
        for k in 0..100 {
            assert_eq!(kv.get(k).unwrap().len(), (k % 32) as usize + 1);
        }
        kv.set(5, vec![9]);
        assert_eq!(kv.get(5).unwrap(), &vec![9]);
        assert_eq!(kv.len(), 100);
    }

    #[test]
    fn etc_is_get_dominated() {
        let mut src = EtcSource::new(10_000);
        let mut rng = DetRng::seed(11);
        let gets = (0..10_000)
            .filter(|_| src.next(&mut rng).op == OP_GET)
            .count();
        let frac = gets as f64 / 10_000.0;
        assert!((0.93..0.97).contains(&frac), "GET fraction {frac}");
    }

    #[test]
    fn etc_values_are_mostly_small() {
        let mut src = EtcSource::new(10_000);
        let mut rng = DetRng::seed(12);
        let sizes: Vec<u32> = (0..10_000).map(|_| src.next(&mut rng).vsize).collect();
        let small = sizes.iter().filter(|&&s| s < 1024).count() as f64 / sizes.len() as f64;
        assert!(small > 0.85, "small fraction {small}");
        assert!(sizes.iter().any(|&s| s > 4096), "tail exists");
    }

    #[test]
    fn etc_keys_are_skewed() {
        let mut src = EtcSource::new(100_000);
        let mut rng = DetRng::seed(13);
        let hot = (0..20_000)
            .filter(|_| src.next(&mut rng).key < 1000)
            .count() as f64
            / 20_000.0;
        assert!(hot > 0.3, "hot-key fraction {hot}");
    }

    #[test]
    fn service_tracks_hits_and_misses() {
        let mut svc = KvService::new(100);
        let mut mem = GuestMemory::new(4096);
        let hit = ParsedRequest {
            send_ps: 0,
            key: 5,
            op: OP_GET,
            vsize: 0,
        };
        let miss = ParsedRequest {
            send_ps: 0,
            key: 999_999,
            op: OP_GET,
            vsize: 0,
        };
        let set = ParsedRequest {
            send_ps: 0,
            key: 999_999,
            op: OP_SET,
            vsize: 256,
        };
        let out = svc.serve(&hit, &mut mem);
        assert!(out.reply_len > 8);
        svc.serve(&miss, &mut mem);
        svc.serve(&set, &mut mem);
        // After the SET, the key hits.
        let out = svc.serve(&miss, &mut mem);
        assert_eq!(out.reply_len, 8 + 256);
        assert_eq!(svc.counters(), (2, 1, 1));
    }

    #[test]
    fn service_cost_scales_with_value_size() {
        let mut svc = KvService::new(0);
        let mut mem = GuestMemory::new(4096);
        svc.serve(
            &ParsedRequest {
                send_ps: 0,
                key: 1,
                op: OP_SET,
                vsize: 10_000,
            },
            &mut mem,
        );
        let big = svc.serve(
            &ParsedRequest {
                send_ps: 0,
                key: 1,
                op: OP_GET,
                vsize: 0,
            },
            &mut mem,
        );
        svc.serve(
            &ParsedRequest {
                send_ps: 0,
                key: 2,
                op: OP_SET,
                vsize: 10,
            },
            &mut mem,
        );
        let small = svc.serve(
            &ParsedRequest {
                send_ps: 0,
                key: 2,
                op: OP_GET,
                vsize: 0,
            },
            &mut mem,
        );
        assert!(big.compute > small.compute);
    }
}

//! Fig. 9 runner: TPC-C throughput.
//!
//! Closed-loop clients drive the TPC-C-lite engine inside L2; every
//! read-write transaction persists its WAL record to virtio-blk before
//! replying, composing the network and disk exit profiles.

use svt_core::SwitchMode;
use svt_sim::SimDuration;

use crate::harness::{attach_blk, rr_machine_seeded, DEFAULT_LANE_SEED};
use crate::layout;
use crate::loadgen::ArrivalMode;
use crate::server::{RrServer, ServerConfig};
use crate::tpcc::{TpccService, TpccSource};

/// Transactions per minute at the given engine. `transactions` counts
/// whole TPC-C transactions (each tens of statements on the wire).
pub fn tpcc_tpm(mode: SwitchMode, transactions: u64) -> f64 {
    tpcc_tpm_seeded(mode, transactions, DEFAULT_LANE_SEED)
}

/// [`tpcc_tpm`] with an explicit request-stream seed.
pub fn tpcc_tpm_seeded(mode: SwitchMode, transactions: u64, seed: u64) -> f64 {
    // ~34 statements per average transaction in the standard mix.
    let statements = transactions * 34;
    let source = Box::new(TpccSource::new(4));
    let (mut m, stats) = rr_machine_seeded(
        mode,
        ArrivalMode::ClosedLoop {
            concurrency: 4,
            think: SimDuration::from_us(15),
        },
        statements,
        source,
        seed,
    );
    attach_blk(&mut m);
    let cost = m.cost.clone();
    let mut cfg = ServerConfig::rr_defaults(&cost, statements);
    cfg.blk_mmio = Some(layout::BLK_MMIO);
    cfg.timer_rearm_every = 2;
    cfg.replenish_every = 2;
    let (service, db) = TpccService::new(4);
    let mut server = RrServer::new(cfg, Box::new(service));
    m.run(&mut server).expect("tpcc run completes");
    let s = stats.borrow();
    let span_min = s
        .last_reply
        .expect("replies received")
        .since(s.first_send.expect("requests sent"))
        .as_secs()
        / 60.0;
    let committed = db.borrow().committed();
    committed as f64 / span_min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_in_plausible_band() {
        // Paper baseline: 6.37 ktpm; we target the same order of magnitude.
        let tpm = tpcc_tpm(SwitchMode::Baseline, 120);
        assert!(
            (2_000.0..20_000.0).contains(&tpm),
            "baseline TPC-C {tpm} tpm"
        );
    }

    #[test]
    fn sw_svt_improves_throughput() {
        let b = tpcc_tpm(SwitchMode::Baseline, 120);
        let s = tpcc_tpm(SwitchMode::SwSvt, 120);
        assert!(s > b, "baseline {b} sw {s}");
        // Paper: 1.18x; allow a generous emergent band.
        let speedup = s / b;
        assert!((1.02..1.6).contains(&speedup), "speedup {speedup}");
    }
}

//! netperf TCP_STREAM: a windowed bulk sender.
//!
//! The guest keeps a window of 16 KB packets posted on the TX virtqueue
//! of a [`svt_virtio::VirtioNet`] in sink mode; coalesced ACK interrupts
//! return credits. Throughput is whatever survives the virtualization
//! overheads and the 10 GbE line — near line rate in the baseline, which
//! is why the paper's Fig. 7 network-bandwidth speedup saturates at
//! 1.00×/1.12×.

use std::collections::HashMap;

use svt_arch::{MSR_TSC_DEADLINE, MSR_X2APIC_EOI, VECTOR_TIMER, VECTOR_VIRTIO};
use svt_hv::{GuestCtx, GuestOp, GuestProgram};
use svt_sim::{SimDuration, SimTime};
use svt_virtio::Virtqueue;

use crate::layout;

/// The bulk-transfer sender program.
#[derive(Debug)]
pub struct StreamSender {
    packet_len: u32,
    window: u32,
    total_packets: u64,
    netstack_tx: SimDuration,
    timer_rearm_every: u64,
    tx: Virtqueue,
    tx_free: Vec<u64>,
    tx_inflight: HashMap<u16, u64>,
    sent: u64,
    acked: u64,
    credits: u32,
    eoi_owed: u32,
    since_timer: u64,
    pending: Vec<GuestOp>,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    init_done: bool,
}

impl StreamSender {
    /// Sends `total_packets` packets of `packet_len` bytes with the given
    /// window.
    pub fn new(
        cost: &svt_sim::CostModel,
        packet_len: u32,
        window: u32,
        total_packets: u64,
    ) -> Self {
        assert!((1..=16).contains(&window), "window fits the buffer pool");
        StreamSender {
            packet_len,
            window,
            total_packets,
            netstack_tx: cost.netstack_per_packet,
            timer_rearm_every: 16,
            tx: Virtqueue::new(layout::TX_QUEUE, 32),
            tx_free: (0..16)
                .map(|i| layout::TX_BUFS.0 + i * layout::BUF_SIZE * 4)
                .collect(),
            tx_inflight: HashMap::new(),
            sent: 0,
            acked: 0,
            credits: 0,
            eoi_owed: 0,
            since_timer: 0,
            pending: Vec::new(),
            started: None,
            finished: None,
            init_done: false,
        }
    }

    /// Achieved goodput in Mbps over the active window.
    ///
    /// # Panics
    ///
    /// Panics before the run finishes.
    pub fn throughput_mbps(&self) -> f64 {
        let start = self.started.expect("run not started");
        let end = self.finished.expect("run not finished");
        let bits = self.acked as f64 * self.packet_len as f64 * 8.0;
        bits / end.since(start).as_secs() / 1e6
    }

    /// Packets acknowledged so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    fn post_packets(&mut self, ctx: &mut GuestCtx<'_>, n: u32) -> bool {
        let mut posted = false;
        for _ in 0..n {
            if self.sent >= self.total_packets {
                break;
            }
            let Some(buf) = self.tx_free.pop() else {
                break;
            };
            let head = self
                .tx
                .driver_add(ctx.mem, &[(buf, self.packet_len, false)])
                .expect("tx ring in RAM");
            self.tx_inflight.insert(head, buf);
            self.sent += 1;
            self.since_timer += 1;
            posted = true;
        }
        posted
    }
}

impl GuestProgram for StreamSender {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        if self.eoi_owed > 0 {
            self.eoi_owed -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if !self.init_done {
            self.init_done = true;
            self.tx.init(ctx.mem).expect("tx ring in RAM");
            self.started = Some(ctx.now);
            self.post_packets(ctx, self.window);
            self.pending.push(GuestOp::MmioWrite {
                gpa: layout::NET_MMIO + svt_virtio::REG_TX_NOTIFY,
                value: 1,
            });
            return GuestOp::Compute(self.netstack_tx * self.window as u64);
        }
        if self.acked >= self.total_packets {
            if self.finished.is_none() {
                self.finished = Some(ctx.now);
            }
            return GuestOp::Done;
        }
        if self.credits > 0 {
            let n = self.credits;
            self.credits = 0;
            if self.post_packets(ctx, n) {
                self.pending.push(GuestOp::MmioWrite {
                    gpa: layout::NET_MMIO + svt_virtio::REG_TX_NOTIFY,
                    value: 1,
                });
                if self.timer_rearm_every > 0 && self.since_timer >= self.timer_rearm_every {
                    self.since_timer = 0;
                    self.pending.push(GuestOp::MsrWrite {
                        msr: MSR_TSC_DEADLINE,
                        value: u64::MAX / 2,
                    });
                }
                return GuestOp::Compute(self.netstack_tx * n as u64);
            }
        }
        GuestOp::Hlt
    }

    fn interrupt(&mut self, vector: u8, ctx: &mut GuestCtx<'_>) {
        self.eoi_owed += 1;
        if vector == VECTOR_VIRTIO {
            while let Some((head, _)) = self.tx.driver_take_used(ctx.mem).expect("tx ring") {
                if let Some(buf) = self.tx_inflight.remove(&head) {
                    self.tx_free.push(buf);
                    self.acked += 1;
                    self.credits += 1;
                }
            }
        } else if vector == VECTOR_TIMER {
            // Stray retransmit timer; nothing to do.
        }
    }

    fn name(&self) -> &'static str {
        "stream-sender"
    }
}

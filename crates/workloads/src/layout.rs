//! Guest-physical memory layout shared by the workload programs.
//!
//! All workloads place their virtqueues and buffer pools at fixed
//! addresses below the device MMIO windows; the default nested machine
//! identity-maps this range in both EPT levels.

use svt_mem::{Gpa, Hpa};

/// TX virtqueue of the NIC.
pub const TX_QUEUE: Hpa = Hpa(0x20_0000);
/// RX virtqueue of the NIC.
pub const RX_QUEUE: Hpa = Hpa(0x21_0000);
/// Virtqueue of the block device.
pub const BLK_QUEUE: Hpa = Hpa(0x22_0000);
/// RX buffer pool base.
pub const RX_BUFS: Hpa = Hpa(0x30_0000);
/// TX buffer pool base.
pub const TX_BUFS: Hpa = Hpa(0x38_0000);
/// Block request buffer base.
pub const BLK_BUFS: Hpa = Hpa(0x3a_0000);
/// Size of one pooled buffer.
pub const BUF_SIZE: u64 = 0x1000;
/// MMIO base of the (load-generator) NIC.
pub const NET_MMIO: Gpa = Gpa(0x4000_0000);
/// MMIO base of the block device.
pub const BLK_MMIO: Gpa = Gpa(0x4100_0000);

/// Gap between consecutive vCPUs' MMIO windows (each device claims one
/// 4 KiB page; a 64 KiB gap keeps lanes page-aligned and far apart).
pub const MMIO_LANE_STRIDE: u64 = 0x1_0000;
/// Size of one extra lane's private memory block (queues + buffer pools).
pub const LANE_BLOCK_SIZE: u64 = 0x10_0000;
/// Base of the first extra lane's block (lane 0 keeps the historical
/// region below, so single-vCPU runs are bit-identical).
pub const LANE_BLOCKS_BASE: u64 = 0x40_0000;

/// Guest-memory addresses of one vCPU's private workload lane: its
/// virtqueues, buffer pools and device MMIO windows. SMP workloads give
/// each vCPU its own lane so queue traffic never crosses vCPUs — the
/// queue-to-IRQ affinity the SMP machine routes device completions by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLayout {
    /// TX virtqueue of the lane's NIC.
    pub tx_queue: Hpa,
    /// RX virtqueue of the lane's NIC.
    pub rx_queue: Hpa,
    /// Virtqueue of the lane's block device.
    pub blk_queue: Hpa,
    /// RX buffer pool base.
    pub rx_bufs: Hpa,
    /// TX buffer pool base.
    pub tx_bufs: Hpa,
    /// Block request buffer base.
    pub blk_bufs: Hpa,
    /// MMIO base of the lane's NIC.
    pub net_mmio: Gpa,
    /// MMIO base of the lane's block device.
    pub blk_mmio: Gpa,
}

/// The workload lane of vCPU `vcpu`. Lane 0 is exactly the historical
/// single-vCPU layout (same constants as above); every further lane gets
/// a disjoint [`LANE_BLOCK_SIZE`] memory block and its own MMIO windows.
pub fn lane(vcpu: usize) -> LaneLayout {
    if vcpu == 0 {
        return LaneLayout {
            tx_queue: TX_QUEUE,
            rx_queue: RX_QUEUE,
            blk_queue: BLK_QUEUE,
            rx_bufs: RX_BUFS,
            tx_bufs: TX_BUFS,
            blk_bufs: BLK_BUFS,
            net_mmio: NET_MMIO,
            blk_mmio: BLK_MMIO,
        };
    }
    let base = LANE_BLOCKS_BASE + (vcpu as u64 - 1) * LANE_BLOCK_SIZE;
    let mmio_off = vcpu as u64 * MMIO_LANE_STRIDE;
    LaneLayout {
        tx_queue: Hpa(base),
        rx_queue: Hpa(base + 0x1_0000),
        blk_queue: Hpa(base + 0x2_0000),
        rx_bufs: Hpa(base + 0x4_0000),
        tx_bufs: Hpa(base + 0x8_0000),
        blk_bufs: Hpa(base + 0xa_0000),
        net_mmio: Gpa(NET_MMIO.0 + mmio_off),
        blk_mmio: Gpa(BLK_MMIO.0 + mmio_off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane0_is_the_historical_layout() {
        let l = lane(0);
        assert_eq!(l.tx_queue, TX_QUEUE);
        assert_eq!(l.rx_bufs, RX_BUFS);
        assert_eq!(l.net_mmio, NET_MMIO);
        assert_eq!(l.blk_mmio, BLK_MMIO);
    }

    #[test]
    fn lanes_are_disjoint() {
        let lanes: Vec<_> = (0..8).map(lane).collect();
        for (i, a) in lanes.iter().enumerate() {
            for b in &lanes[i + 1..] {
                // Memory blocks at least a buffer pool apart.
                assert!(a.tx_queue.0.abs_diff(b.tx_queue.0) >= 0x4_0000);
                assert!(a.rx_bufs.0.abs_diff(b.rx_bufs.0) >= 0x4_0000);
                // MMIO windows never overlap (4 KiB each).
                assert!(a.net_mmio.0.abs_diff(b.net_mmio.0) >= 0x1000);
                assert!(a.blk_mmio.0.abs_diff(b.blk_mmio.0) >= 0x1000);
            }
        }
    }
}

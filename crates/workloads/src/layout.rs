//! Guest-physical memory layout shared by the workload programs.
//!
//! All workloads place their virtqueues and buffer pools at fixed
//! addresses below the device MMIO windows; the default nested machine
//! identity-maps this range in both EPT levels.

use svt_mem::{Gpa, Hpa};

/// TX virtqueue of the NIC.
pub const TX_QUEUE: Hpa = Hpa(0x20_0000);
/// RX virtqueue of the NIC.
pub const RX_QUEUE: Hpa = Hpa(0x21_0000);
/// Virtqueue of the block device.
pub const BLK_QUEUE: Hpa = Hpa(0x22_0000);
/// RX buffer pool base.
pub const RX_BUFS: Hpa = Hpa(0x30_0000);
/// TX buffer pool base.
pub const TX_BUFS: Hpa = Hpa(0x38_0000);
/// Block request buffer base.
pub const BLK_BUFS: Hpa = Hpa(0x3a_0000);
/// Size of one pooled buffer.
pub const BUF_SIZE: u64 = 0x1000;
/// MMIO base of the (load-generator) NIC.
pub const NET_MMIO: Gpa = Gpa(0x4000_0000);
/// MMIO base of the block device.
pub const BLK_MMIO: Gpa = Gpa(0x4100_0000);

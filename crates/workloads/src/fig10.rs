//! Fig. 10 runner: video-playback frame drops.

use svt_core::{nested_machine, SwitchMode};
use svt_sim::SimDuration;

use crate::harness::attach_blk;
use crate::video::{VideoConfig, VideoPlayer};

/// Result of one playback run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaybackResult {
    /// Frames presented.
    pub played: u64,
    /// Frames later than the tolerance.
    pub dropped: u64,
}

/// Plays `secs` seconds at `fps` under the given engine.
pub fn video_playback(mode: SwitchMode, fps: u32, secs: u64) -> PlaybackResult {
    let mut m = nested_machine(mode);
    attach_blk(&mut m);
    let mut cfg = VideoConfig::isca19(fps);
    cfg.duration = SimDuration::from_secs(secs);
    let mut player = VideoPlayer::new(cfg, 0x0f_0b_0e_0a);
    m.run(&mut player).expect("playback completes");
    PlaybackResult {
        played: player.frames_played(),
        dropped: player.frames_dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_frame_rates_never_drop() {
        let r = video_playback(SwitchMode::Baseline, 24, 20);
        assert_eq!(r.dropped, 0, "dropped {} of {}", r.dropped, r.played);
        assert!(r.played >= 24 * 20 - 1);
    }

    #[test]
    fn high_frame_rate_drops_under_baseline() {
        let r = video_playback(SwitchMode::Baseline, 120, 60);
        assert!(r.dropped > 0, "expected drops at 120 FPS");
    }

    #[test]
    fn svt_reduces_drops() {
        let b = video_playback(SwitchMode::Baseline, 120, 60);
        let s = video_playback(SwitchMode::SwSvt, 120, 60);
        let h = video_playback(SwitchMode::HwSvt, 120, 60);
        assert!(
            s.dropped < b.dropped,
            "baseline {} sw {}",
            b.dropped,
            s.dropped
        );
        assert!(h.dropped <= s.dropped, "sw {} hw {}", s.dropped, h.dropped);
    }
}

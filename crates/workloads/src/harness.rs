//! Experiment harness: wiring machines, devices and guest programs.

use std::cell::RefCell;
use std::rc::Rc;

use svt_core::{nested_machine, SwitchMode};
use svt_hv::Machine;
use svt_sim::{CostModel, SimDuration};
use svt_virtio::{BlkConfig, VirtioBlk, Virtqueue};

use crate::layout;
use crate::loadgen::{ArrivalMode, LoadGenConfig, LoadGenNet, LoadStats, RequestSource};
use crate::server::VECTOR_BLK;

/// Queue size shared by the workload programs and device models.
pub const QUEUE_SIZE: u16 = 32;

/// Builds a nested machine with a load-generator NIC attached; returns the
/// machine and the shared statistics handle.
pub fn rr_machine(
    mode: SwitchMode,
    arrival: ArrivalMode,
    total_requests: u64,
    source: Box<dyn RequestSource>,
) -> (Machine, Rc<RefCell<LoadStats>>) {
    let mut m = nested_machine(mode);
    let cost = m.cost.clone();
    let cfg = LoadGenConfig {
        mmio_base: layout::NET_MMIO,
        irq_vector: svt_vmx::VECTOR_VIRTIO,
        wire_latency: cost.wire_latency,
        kick_service: cost.virtio_backend_service,
        completion_service: cost.virtio_backend_service,
        kick_backend_exits: 1,
        completion_backend_exits: 1,
        arrival,
        total_requests,
        seed: 0x1509,
    };
    let (dev, stats) = LoadGenNet::new(
        cfg,
        source,
        Virtqueue::new(layout::TX_QUEUE, QUEUE_SIZE),
        Virtqueue::new(layout::RX_QUEUE, QUEUE_SIZE),
    );
    m.add_device(Box::new(dev));
    (m, stats)
}

/// Attaches a virtio-blk device (vector [`VECTOR_BLK`]) to a machine.
pub fn attach_blk(m: &mut Machine) {
    let cost = m.cost.clone();
    let mut cfg = BlkConfig::from_cost(&cost);
    cfg.irq_vector = VECTOR_BLK;
    let blk = VirtioBlk::new(cfg, Virtqueue::new(layout::BLK_QUEUE, QUEUE_SIZE));
    m.add_device(Box::new(blk));
}

/// Closed-loop single-connection arrival (netperf TCP_RR).
pub fn rr_arrival(cost: &CostModel) -> ArrivalMode {
    ArrivalMode::ClosedLoop {
        concurrency: 1,
        think: cost.netstack_per_packet + SimDuration::from_us(6),
    }
}

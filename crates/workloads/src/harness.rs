//! Experiment harness: wiring machines, devices and guest programs.

use std::cell::RefCell;
use std::rc::Rc;

use svt_core::{nested_machine, SwitchMode};
use svt_hv::Machine;
use svt_sim::{CostModel, SimDuration};
use svt_virtio::{BlkConfig, VirtioBlk, Virtqueue};

use crate::layout;
use crate::loadgen::{ArrivalMode, LoadGenConfig, LoadGenNet, LoadStats, RequestSource};
use crate::server::VECTOR_BLK;

/// Queue size shared by the workload programs and device models.
pub const QUEUE_SIZE: u16 = 32;

/// Historical base seed of the per-lane request streams (lane `v` draws
/// from `DEFAULT_LANE_SEED + v`). Runs that don't pass an explicit seed
/// stay bit-identical to every earlier release.
pub const DEFAULT_LANE_SEED: u64 = 0x1509;

/// Builds a nested machine with a load-generator NIC attached; returns the
/// machine and the shared statistics handle.
pub fn rr_machine(
    mode: SwitchMode,
    arrival: ArrivalMode,
    total_requests: u64,
    source: Box<dyn RequestSource>,
) -> (Machine, Rc<RefCell<LoadStats>>) {
    rr_machine_seeded(mode, arrival, total_requests, source, DEFAULT_LANE_SEED)
}

/// [`rr_machine`] with an explicit request-stream seed, so single-vCPU
/// benchmark runs are reproducible from one `--seed` value.
pub fn rr_machine_seeded(
    mode: SwitchMode,
    arrival: ArrivalMode,
    total_requests: u64,
    source: Box<dyn RequestSource>,
    seed: u64,
) -> (Machine, Rc<RefCell<LoadStats>>) {
    let mut m = nested_machine(mode);
    let stats = attach_loadgen_for_seeded(&mut m, 0, arrival, total_requests, source, seed);
    (m, stats)
}

/// Attaches a virtio-blk device (vector [`VECTOR_BLK`]) to a machine.
pub fn attach_blk(m: &mut Machine) {
    attach_blk_for(m, 0);
}

/// Attaches a per-vCPU load-generator NIC on `vcpu`'s workload lane:
/// queues and MMIO come from [`layout::lane`], and the device's
/// completions and interrupts are routed to that vCPU only (queue-to-IRQ
/// affinity). Each lane seeds its request stream differently so the
/// per-vCPU streams are distinct but deterministic.
pub fn attach_loadgen_for(
    m: &mut Machine,
    vcpu: usize,
    arrival: ArrivalMode,
    total_requests: u64,
    source: Box<dyn RequestSource>,
) -> Rc<RefCell<LoadStats>> {
    attach_loadgen_for_seeded(m, vcpu, arrival, total_requests, source, DEFAULT_LANE_SEED)
}

/// [`attach_loadgen_for`] with an explicit base seed: lane `vcpu` draws
/// its request stream from `base_seed + vcpu`, so a whole run is
/// reproducible from one `--seed` value.
pub fn attach_loadgen_for_seeded(
    m: &mut Machine,
    vcpu: usize,
    arrival: ArrivalMode,
    total_requests: u64,
    source: Box<dyn RequestSource>,
    base_seed: u64,
) -> Rc<RefCell<LoadStats>> {
    let cost = m.cost.clone();
    let lane = layout::lane(vcpu);
    let cfg = LoadGenConfig {
        mmio_base: lane.net_mmio,
        irq_vector: svt_arch::VECTOR_VIRTIO,
        wire_latency: cost.wire_latency,
        kick_service: cost.virtio_backend_service,
        completion_service: cost.virtio_backend_service,
        kick_backend_exits: 1,
        completion_backend_exits: 1,
        arrival,
        total_requests,
        seed: base_seed + vcpu as u64,
    };
    let (dev, stats) = LoadGenNet::new(
        cfg,
        source,
        Virtqueue::new(lane.tx_queue, QUEUE_SIZE),
        Virtqueue::new(lane.rx_queue, QUEUE_SIZE),
    );
    m.add_device_for(Box::new(dev), vcpu);
    stats
}

/// Attaches a virtio-blk device on `vcpu`'s workload lane, with its
/// completion IRQs routed to that vCPU.
pub fn attach_blk_for(m: &mut Machine, vcpu: usize) {
    let cost = m.cost.clone();
    let lane = layout::lane(vcpu);
    let mut cfg = BlkConfig::from_cost(&cost);
    cfg.mmio_base = lane.blk_mmio;
    cfg.irq_vector = VECTOR_BLK;
    let blk = VirtioBlk::new(cfg, Virtqueue::new(lane.blk_queue, QUEUE_SIZE));
    m.add_device_for(Box::new(blk), vcpu);
}

/// Closed-loop single-connection arrival (netperf TCP_RR).
pub fn rr_arrival(cost: &CostModel) -> ArrivalMode {
    ArrivalMode::ClosedLoop {
        concurrency: 1,
        think: cost.netstack_per_packet + SimDuration::from_us(6),
    }
}

//! Fig. 6 and Table 1 runners: the cpuid micro-benchmark.

use svt_arch::ArchId;
use svt_core::{nested_machine, nested_machine_on, SwitchMode};
use svt_hv::{GuestOp, Level, Machine, MachineConfig, OpLoop};
use svt_obs::{Json, MetricKey, ObsLevel};
use svt_sim::{CostPart, SimDuration};

/// One bar of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Bar {
    /// Bar label ("L0", "L1", "L2", "SW SVt", "HW SVt").
    pub label: &'static str,
    /// cpuid latency in microseconds.
    pub time_us: f64,
    /// Speedup vs the baseline L2 bar (1.0 for non-SVt bars).
    pub speedup: f64,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Part index ⓪–⑤.
    pub part: usize,
    /// Row label.
    pub label: String,
    /// Measured time in microseconds.
    pub time_us: f64,
    /// Share of the total.
    pub percent: f64,
    /// The paper's value in microseconds.
    pub paper_us: f64,
}

fn measure_cpuid(m: &mut Machine, iters: u64) -> svt_sim::ClockSnapshot {
    let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut warm).expect("cpuid never blocks");
    let base = m.clock.snapshot();
    let mut prog = OpLoop::new(GuestOp::Cpuid, iters, 0, SimDuration::ZERO);
    m.run(&mut prog).expect("cpuid never blocks");
    m.clock.since_snapshot(&base)
}

/// cpuid latency in µs at a given level/mode.
pub fn cpuid_us(level: Level, mode: SwitchMode, iters: u64) -> f64 {
    cpuid_counted(level, mode, iters).0
}

/// [`cpuid_us`] additionally returning the number of simulated traps
/// the run served (L2 vm-exits plus L0 direct exits) — the wall-clock
/// self-benchmark's unit of work.
pub fn cpuid_counted(level: Level, mode: SwitchMode, iters: u64) -> (f64, u64) {
    let mut m = if level == Level::L2 {
        nested_machine(mode)
    } else {
        Machine::baseline(MachineConfig::at_level(level))
    };
    let d = measure_cpuid(&mut m, iters);
    let traps =
        m.obs.metrics.counter_total("vm_exit") + m.obs.metrics.counter_total("l0_direct_exit");
    (d.busy_time().as_us() / iters as f64, traps)
}

/// [`cpuid_us`] on an explicit ISA backend. On RISC-V the probe
/// instruction traps as a virtual instruction rather than a `cpuid`
/// exit, and the backend's own cost model applies.
pub fn cpuid_us_on(level: Level, mode: SwitchMode, arch: ArchId, iters: u64) -> f64 {
    let mut m = if level == Level::L2 {
        nested_machine_on(mode, arch)
    } else {
        Machine::baseline(MachineConfig::at_level_on(level, arch))
    };
    measure_cpuid(&mut m, iters).busy_time().as_us() / iters as f64
}

/// The five Fig. 6 cells in bar order. Each cell is an independent
/// machine configuration, so the figure sweeps cleanly.
const FIG6_CELLS: [(&str, Level, SwitchMode); 5] = [
    ("L0", Level::L0, SwitchMode::Baseline),
    ("L1", Level::L1, SwitchMode::Baseline),
    ("L2", Level::L2, SwitchMode::Baseline),
    ("SW SVt", Level::L2, SwitchMode::SwSvt),
    ("HW SVt", Level::L2, SwitchMode::HwSvt),
];

fn bars_from_times(times: &[f64]) -> Vec<Fig6Bar> {
    let l2 = times[2];
    FIG6_CELLS
        .iter()
        .zip(times)
        .map(|(&(label, _, mode), &t)| Fig6Bar {
            label,
            time_us: t,
            speedup: if mode == SwitchMode::Baseline {
                1.0
            } else {
                l2 / t
            },
        })
        .collect()
}

/// Reproduces Fig. 6: the five bars with speedups against baseline L2.
pub fn fig6(iters: u64) -> Vec<Fig6Bar> {
    fig6_jobs(iters, 1)
}

/// [`fig6`] with the five cells fanned across `jobs` sweep workers.
/// Results merge in bar order, so every worker count produces the same
/// bars, bit for bit.
pub fn fig6_jobs(iters: u64, jobs: usize) -> Vec<Fig6Bar> {
    let times = svt_sim::sweep(FIG6_CELLS.len(), jobs, |i| {
        let (_, level, mode) = FIG6_CELLS[i];
        cpuid_us(level, mode, iters)
    });
    bars_from_times(&times)
}

/// The five Fig. 6 bars computed on an explicit ISA backend, fanned
/// across `jobs` sweep workers with grid-order merge (byte-identical at
/// any worker count).
pub fn fig6_bars_on(arch: ArchId, iters: u64, jobs: usize) -> Vec<Fig6Bar> {
    fig6_bars_on_ckpt(arch, iters, jobs, None)
}

/// [`fig6_bars_on`] with optional campaign checkpointing: each bar cell
/// journals to `ckpt` under the `bars` scope, and `(ckpt, true)` resumes
/// from the journal, recomputing only the cells it is missing.
pub fn fig6_bars_on_ckpt(
    arch: ArchId,
    iters: u64,
    jobs: usize,
    ckpt: Option<(&svt_sim::checkpoint::Checkpoint, bool)>,
) -> Vec<Fig6Bar> {
    let run = |i: usize| {
        let (_, level, mode) = FIG6_CELLS[i];
        cpuid_us_on(level, mode, arch, iters)
    };
    let times = match ckpt {
        Some((c, resume)) => c.sweep(
            "bars",
            FIG6_CELLS.len(),
            jobs,
            resume,
            run,
            |t, w| w.f64(*t),
            |r| r.f64(),
        ),
        None => svt_sim::sweep(FIG6_CELLS.len(), jobs, run),
    };
    bars_from_times(&times)
}

/// Everything the Fig. 6 report carries, computed as one sweep grid:
/// the five bars, the Table 1 breakdown, and the observed per-exit
/// attribution with the metrics export.
#[derive(Debug, Clone)]
pub struct Fig6Grid {
    /// The five Fig. 6 bars, in bar order.
    pub bars: Vec<Fig6Bar>,
    /// The Table 1 six-part breakdown of one nested cpuid.
    pub table1: Vec<Table1Row>,
    /// Per-exit-reason attribution of the observed baseline run.
    pub exits: Vec<ExitAttribution>,
    /// The observed run's metrics export (counters, gauges, histograms).
    pub metrics: Json,
}

enum GridCell {
    Bar(f64),
    Table(Vec<Table1Row>),
    Observed(Box<(Vec<ExitAttribution>, Json)>),
}

fn grid_cell_save(c: &GridCell, w: &mut svt_sim::SnapWriter) {
    match c {
        GridCell::Bar(t) => {
            w.u8(0);
            w.f64(*t);
        }
        GridCell::Table(rows) => {
            w.u8(1);
            w.usize(rows.len());
            for row in rows {
                w.usize(row.part);
                w.str(&row.label);
                w.f64(row.time_us);
                w.f64(row.percent);
                w.f64(row.paper_us);
            }
        }
        GridCell::Observed(obs) => {
            let (exits, metrics) = &**obs;
            w.u8(2);
            w.usize(exits.len());
            for e in exits {
                w.str(e.reason);
                w.f64(e.time_ns);
                w.u64(e.count);
            }
            // The metrics export round-trips through its own canonical
            // JSON text (parse(pretty(j)) == j).
            w.str(&metrics.pretty());
        }
    }
}

fn grid_cell_load(r: &mut svt_sim::SnapReader<'_>) -> Result<GridCell, svt_sim::SnapError> {
    match r.u8()? {
        0 => Ok(GridCell::Bar(r.f64()?)),
        1 => {
            let len = r.usize()?;
            let mut rows = Vec::with_capacity(len.min(64));
            for _ in 0..len {
                rows.push(Table1Row {
                    part: r.usize()?,
                    label: r.str()?.to_string(),
                    time_us: r.f64()?,
                    percent: r.f64()?,
                    paper_us: r.f64()?,
                });
            }
            Ok(GridCell::Table(rows))
        }
        2 => {
            let len = r.usize()?;
            let mut exits = Vec::with_capacity(len.min(64));
            for _ in 0..len {
                exits.push(ExitAttribution {
                    reason: svt_sim::snapshot::intern_static(r.str()?),
                    time_ns: r.f64()?,
                    count: r.u64()?,
                });
            }
            let text = r.str()?;
            let metrics = Json::parse(text).map_err(|_| svt_sim::SnapError::BadValue {
                what: "fig6 metrics JSON",
                got: text.len() as u64,
            })?;
            Ok(GridCell::Observed(Box::new((exits, metrics))))
        }
        tag => Err(svt_sim::SnapError::BadValue {
            what: "fig6 grid-cell tag",
            got: tag as u64,
        }),
    }
}

/// Runs the full Fig. 6 grid — five bar cells plus the Table 1 and
/// observed-attribution cells — across `jobs` sweep workers. All seven
/// cells build independent machines, and the merge is in grid order, so
/// the grid is byte-identical for every `jobs` value.
pub fn fig6_grid(iters: u64, jobs: usize) -> Fig6Grid {
    fig6_grid_ckpt(iters, jobs, None)
}

/// [`fig6_grid`] with optional campaign checkpointing: each of the seven
/// grid cells journals to `ckpt` under the `fig6` scope as it completes,
/// and `(ckpt, true)` resumes from the journal, recomputing only missing
/// or corrupted cells. The merged grid is byte-identical either way.
pub fn fig6_grid_ckpt(
    iters: u64,
    jobs: usize,
    ckpt: Option<(&svt_sim::checkpoint::Checkpoint, bool)>,
) -> Fig6Grid {
    let n_bars = FIG6_CELLS.len();
    let run = |i: usize| {
        if i < n_bars {
            let (_, level, mode) = FIG6_CELLS[i];
            GridCell::Bar(cpuid_us(level, mode, iters))
        } else if i == n_bars {
            GridCell::Table(table1(iters))
        } else {
            GridCell::Observed(Box::new(cpuid_observed(SwitchMode::Baseline, iters)))
        }
    };
    let mut cells = match ckpt {
        Some((c, resume)) => c.sweep(
            "fig6",
            n_bars + 2,
            jobs,
            resume,
            run,
            grid_cell_save,
            grid_cell_load,
        ),
        None => svt_sim::sweep(n_bars + 2, jobs, run),
    };
    let Some(GridCell::Observed(observed)) = cells.pop() else {
        unreachable!("last grid cell is the observed run")
    };
    let Some(GridCell::Table(table1)) = cells.pop() else {
        unreachable!("sixth grid cell is the Table 1 breakdown")
    };
    let times: Vec<f64> = cells
        .into_iter()
        .map(|c| match c {
            GridCell::Bar(t) => t,
            _ => unreachable!("first five grid cells are bars"),
        })
        .collect();
    let (exits, metrics) = *observed;
    Fig6Grid {
        bars: bars_from_times(&times),
        table1,
        exits,
        metrics,
    }
}

/// Per-exit-reason attribution of a nested cpuid run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitAttribution {
    /// Exit-reason tag, e.g. `"CPUID"`.
    pub reason: &'static str,
    /// Total time attributed to this reason, nanoseconds.
    pub time_ns: f64,
    /// Number of reflected L2 exits with this reason.
    pub count: u64,
}

/// Runs the nested cpuid micro-benchmark under full observability and
/// returns the per-exit-reason attribution plus the machine's metrics
/// export (counters, gauges and latency histograms as JSON).
pub fn cpuid_observed(mode: SwitchMode, iters: u64) -> (Vec<ExitAttribution>, Json) {
    cpuid_observed_on(mode, ArchId::X86, iters)
}

/// [`cpuid_observed`] on an explicit ISA backend: the attribution keys
/// carry the backend's own exit tags (`VIRT_INSTR`, `VS_CSR_WRITE`, …
/// on RISC-V).
pub fn cpuid_observed_on(
    mode: SwitchMode,
    arch: ArchId,
    iters: u64,
) -> (Vec<ExitAttribution>, Json) {
    let mut m = nested_machine_on(mode, arch);
    let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut warm).expect("cpuid never blocks");
    m.obs.metrics.clear();
    let base = m.clock.snapshot();
    let mut prog = OpLoop::new(GuestOp::Cpuid, iters, 0, SimDuration::ZERO);
    m.run(&mut prog).expect("cpuid never blocks");
    let d = m.clock.since_snapshot(&base);
    let reflector = m.reflector_name();
    let exits = d
        .tags_by_time()
        .into_iter()
        .map(|(tag, t)| ExitAttribution {
            reason: tag,
            time_ns: t.as_ns(),
            count: m.obs.metrics.counter(
                MetricKey::new("vm_exit")
                    .level(ObsLevel::L2)
                    .exit(tag)
                    .reflector(reflector),
            ),
        })
        .collect();
    (exits, m.obs.metrics.to_json())
}

/// Reproduces Table 1: the six-part breakdown of one nested cpuid.
pub fn table1(iters: u64) -> Vec<Table1Row> {
    let mut m = nested_machine(SwitchMode::Baseline);
    let d = measure_cpuid(&mut m, iters);
    let paper = [0.05, 0.81, 1.29, 4.89, 1.40, 1.96];
    let total: f64 = CostPart::TABLE1
        .iter()
        .map(|p| d.part_time(*p).as_us())
        .sum();
    CostPart::TABLE1
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let t = d.part_time(*p).as_us() / iters as f64;
            Table1Row {
                part: i,
                label: p.to_string(),
                time_us: t,
                percent: 100.0 * d.part_time(*p).as_us() / total,
                paper_us: paper[i],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_bars_ordered() {
        let bars = fig6(20);
        assert_eq!(bars.len(), 5);
        assert_eq!(bars[0].label, "L0");
        // L0 < L1 < HW SVt < SW SVt < L2.
        assert!(bars[0].time_us < bars[1].time_us);
        assert!(bars[1].time_us < bars[4].time_us);
        assert!(bars[4].time_us < bars[3].time_us);
        assert!(bars[3].time_us < bars[2].time_us);
        // Speedups within the DESIGN.md bands.
        assert!(
            (1.15..=1.35).contains(&bars[3].speedup),
            "{}",
            bars[3].speedup
        );
        assert!(
            (1.8..=2.1).contains(&bars[4].speedup),
            "{}",
            bars[4].speedup
        );
    }

    #[test]
    fn fig6_grid_matches_sequential_runs_at_any_worker_count() {
        let grid = fig6_grid(20, 4);
        assert_eq!(grid.bars, fig6(20));
        assert_eq!(grid.table1, table1(20));
        let (exits, metrics) = cpuid_observed(SwitchMode::Baseline, 20);
        assert_eq!(grid.exits, exits);
        assert_eq!(grid.metrics.pretty(), metrics.pretty());
        assert_eq!(fig6_jobs(20, 3), grid.bars);
    }

    #[test]
    fn fig6_bars_on_x86_match_the_default_runner() {
        assert_eq!(fig6_bars_on(ArchId::X86, 20, 1), fig6(20));
    }

    #[test]
    fn riscv_svt_speedups_exceed_one() {
        // The paper's claim, restated on the H-extension backend: trap
        // elision comes from scheduling, not VT-x specifics. Without
        // shadowing hardware the baseline pays a trap per vs-CSR access,
        // so both SVt engines must clear 1.0.
        let bars = fig6_bars_on(ArchId::Riscv, 20, 2);
        assert_eq!(bars.len(), 5);
        assert!(bars[0].time_us < bars[2].time_us, "L0 beats nested L2");
        assert!(bars[3].speedup > 1.0, "SW SVt {}", bars[3].speedup);
        assert!(bars[4].speedup > 1.0, "HW SVt {}", bars[4].speedup);
    }

    #[test]
    fn table1_matches_paper_within_five_percent() {
        let rows = table1(50);
        assert_eq!(rows.len(), 6);
        let total: f64 = rows.iter().map(|r| r.time_us).sum();
        assert!((total - 10.4).abs() / 10.4 < 0.02, "total {total}");
        for r in &rows {
            assert!(
                (r.time_us - r.paper_us).abs() / r.paper_us < 0.05,
                "{}: {} vs paper {}",
                r.label,
                r.time_us,
                r.paper_us
            );
        }
        let pct: f64 = rows.iter().map(|r| r.percent).sum();
        assert!((pct - 100.0).abs() < 1e-6);
    }
}

//! Workloads reproducing the SVt paper's evaluation.
//!
//! Every experiment of § 6 has a runner here:
//!
//! * [`fig6`]/[`table1`] — the cpuid micro-benchmark (Fig. 6, Table 1);
//! * [`channel_study`] — the § 6.1 communication-channel feasibility study;
//! * [`fig7`] — the I/O subsystem benchmarks (netperf TCP_RR/TCP_STREAM,
//!   ioping, fio);
//! * [`fig8_series`] — memcached under Facebook's ETC workload with the
//!   500 µs SLA sweep;
//! * [`tpcc_tpm`] — TPC-C-lite throughput with WAL persistence (Fig. 9);
//! * [`video_playback`] — frame-deadline playback (Fig. 10).
//!
//! The guest-side programs are real: an in-memory key-value store, a
//! five-transaction TPC-C engine, virtqueue-driving network and disk
//! clients — all issuing genuine architectural operations against the
//! simulated nested stack.
//!
//! # Examples
//!
//! ```
//! use svt_workloads::cpuid_us;
//! use svt_core::SwitchMode;
//! use svt_hv::Level;
//!
//! // The Fig. 6 baseline bar: one nested cpuid costs ~10.4us.
//! let t = cpuid_us(Level::L2, SwitchMode::Baseline, 10);
//! assert!((t - 10.4).abs() < 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod chaos;
mod cpuid;
mod disk;
mod fig10;
mod fig7;
mod fig8;
mod fig9;
mod harness;
mod kvstore;
pub mod layout;
mod loadgen;
mod server;
mod smp;
mod stream;
mod telemetry;
mod tpcc;
mod video;

pub use channel::{
    channel_cell, channel_study, default_workloads, simulate_channel_round_ns, ChannelCell,
    Mechanism, POLL_SMT_STEAL_RATIO,
};
pub use chaos::{memcached_chaos, ChaosPoint};
pub use cpuid::{
    cpuid_counted, cpuid_observed, cpuid_observed_on, cpuid_us, cpuid_us_on, fig6, fig6_bars_on,
    fig6_bars_on_ckpt, fig6_grid, fig6_grid_ckpt, fig6_jobs, table1, ExitAttribution, Fig6Bar,
    Fig6Grid, Table1Row,
};
pub use disk::{DiskBench, DiskMode};
pub use fig10::{video_playback, PlaybackResult};
pub use fig7::{
    disk_bandwidth_kb_s, disk_latency_us, fig7, net_rr_latency_us, net_stream_mbps, IoRow,
};
pub use fig8::{
    default_rates, fig8_series, fig8_series_seeded, memcached_point, memcached_point_seeded, SLA_NS,
};
pub use fig9::{tpcc_tpm, tpcc_tpm_seeded};
pub use harness::{
    attach_blk, attach_blk_for, attach_loadgen_for, attach_loadgen_for_seeded, rr_arrival,
    rr_machine, rr_machine_seeded, DEFAULT_LANE_SEED, QUEUE_SIZE,
};
pub use kvstore::{EtcSource, KvService, KvStore, OP_GET, OP_SET};
pub use loadgen::{
    regs, ArrivalMode, FixedSource, LoadGenConfig, LoadGenNet, LoadStats, Request, RequestSource,
    PAYLOAD_HEADER,
};
pub use server::{
    EchoService, ParsedRequest, RrServer, ServeOutput, ServerConfig, ServiceModel, VECTOR_BLK,
};
pub use smp::{
    memcached_smp, memcached_smp_counted_seeded, memcached_smp_profiled,
    memcached_smp_profiled_seeded, memcached_smp_profiled_seeded_on, memcached_smp_seeded,
    memcached_smp_seeded_on, tpcc_smp, tpcc_smp_profiled, tpcc_smp_profiled_seeded,
    tpcc_smp_seeded, CausalProfile, SmpPoint,
};
pub use stream::StreamSender;
pub use telemetry::{memcached_telemetry, TelemetryOpts, TelemetryPoint};
pub use tpcc::{TpccDb, TpccService, TpccSource, TxType};
pub use video::{VideoConfig, VideoPlayer};

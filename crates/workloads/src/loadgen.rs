//! The load-generator NIC: the remote client machine.
//!
//! For request/response workloads (netperf TCP_RR, memcached+mutilate,
//! sysbench TPC-C) the guest's virtio-net device *is* the boundary to the
//! remote load generator. [`LoadGenNet`] plays both roles: it delivers
//! request packets into the guest's RX virtqueue (open-loop Poisson or
//! closed-loop), and receives replies through the TX virtqueue. Request
//! payloads carry their departure timestamp through real guest memory;
//! the generator reads it back from the echoed reply to record end-to-end
//! latency, exactly as mutilate does.

use std::cell::RefCell;
use std::rc::Rc;
use svt_sim::FnvHashMap;

use svt_hv::{Completion, DeviceModel, DeviceOutcome};
use svt_mem::{Gpa, GuestMemory, Hpa};
use svt_sim::{DetRng, SimDuration, SimTime};
use svt_stats::LatencyRecorder;
use svt_virtio::Virtqueue;

/// MMIO register offsets on the load-generator NIC.
pub mod regs {
    /// Doorbell: guest posted a reply on the TX queue.
    pub const TX_NOTIFY: u64 = 0;
    /// Doorbell: guest replenished RX buffers.
    pub const RX_NOTIFY: u64 = 8;
    /// Write: start generating load.
    pub const START: u64 = 24;
}

/// How the client issues requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// `concurrency` outstanding requests; a reply immediately triggers
    /// the next request after `think` (netperf TCP_RR: concurrency 1).
    ClosedLoop {
        /// Outstanding requests.
        concurrency: u32,
        /// Client processing time between reply and next request.
        think: SimDuration,
    },
    /// Poisson arrivals at a target rate, regardless of replies
    /// (mutilate's open-loop mode for Fig. 8).
    OpenLoop {
        /// Mean inter-arrival time (1/rate).
        mean_interarrival: SimDuration,
    },
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Operation code (workload-defined; e.g. 0 = GET, 1 = SET).
    pub op: u32,
    /// Key identifier.
    pub key: u64,
    /// Value size in bytes (payload the server must produce or store).
    pub vsize: u32,
}

/// Produces the request stream (uniform, ETC-like, TPC-C mix, ...).
pub trait RequestSource: std::fmt::Debug {
    /// The next request.
    fn next(&mut self, rng: &mut DetRng) -> Request;
}

/// Fixed-size requests (netperf TCP_RR's 1-byte ping-pong).
#[derive(Debug, Clone)]
pub struct FixedSource {
    /// The request every client sends.
    pub request: Request,
}

impl RequestSource for FixedSource {
    fn next(&mut self, _rng: &mut DetRng) -> Request {
        self.request
    }
}

/// Shared, externally readable statistics of a load run.
#[derive(Debug, Default)]
pub struct LoadStats {
    /// End-to-end request latencies in nanoseconds.
    pub latency: LatencyRecorder,
    /// Requests sent.
    pub sent: u64,
    /// Replies received.
    pub completed: u64,
    /// Requests dropped because the guest had no RX buffer posted.
    pub dropped: u64,
    /// Time the first request departed.
    pub first_send: Option<SimTime>,
    /// Time the last reply arrived.
    pub last_reply: Option<SimTime>,
}

impl LoadStats {
    /// Achieved throughput in requests/second over the active window.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two events were recorded.
    pub fn throughput_rps(&self) -> f64 {
        let first = self.first_send.expect("no request sent");
        let last = self.last_reply.expect("no reply received");
        let span = last.since(first).as_secs();
        assert!(span > 0.0, "degenerate measurement window");
        self.completed as f64 / span
    }
}

/// Configuration of the generator.
#[derive(Debug)]
pub struct LoadGenConfig {
    /// MMIO window base in the guest's physical space.
    pub mmio_base: Gpa,
    /// Interrupt vector for request delivery.
    pub irq_vector: u8,
    /// One-way wire latency between client and guest.
    pub wire_latency: SimDuration,
    /// Backend service per doorbell kick.
    pub kick_service: SimDuration,
    /// Backend service per delivered request.
    pub completion_service: SimDuration,
    /// Privileged backend operations per kick.
    pub kick_backend_exits: u32,
    /// Privileged backend operations per delivery.
    pub completion_backend_exits: u32,
    /// Arrival process.
    pub arrival: ArrivalMode,
    /// Stop after this many requests.
    pub total_requests: u64,
    /// RNG seed for the request stream.
    pub seed: u64,
}

/// Byte layout of a request/reply payload in guest memory.
pub const PAYLOAD_HEADER: usize = 8 + 8 + 4 + 4; // send_ps, key, op, vsize

const TOKEN_ARRIVAL: u64 = 1 << 62;

/// The load-generator NIC device.
#[derive(Debug)]
pub struct LoadGenNet {
    cfg: LoadGenConfig,
    source: Box<dyn RequestSource>,
    tx: Virtqueue,
    rx: Virtqueue,
    rng: DetRng,
    stats: Rc<RefCell<LoadStats>>,
    pending_arrivals: FnvHashMap<u64, Request>,
    next_token: u64,
    started: bool,
}

impl LoadGenNet {
    /// Creates the generator over the guest's TX/RX queues. Returns the
    /// device and a shared handle to its statistics.
    pub fn new(
        cfg: LoadGenConfig,
        source: Box<dyn RequestSource>,
        tx: Virtqueue,
        rx: Virtqueue,
    ) -> (Self, Rc<RefCell<LoadStats>>) {
        let stats = Rc::new(RefCell::new(LoadStats::default()));
        let seed = cfg.seed;
        (
            LoadGenNet {
                cfg,
                source,
                tx,
                rx,
                rng: DetRng::seed(seed),
                stats: Rc::clone(&stats),
                pending_arrivals: FnvHashMap::default(),
                next_token: 0,
                started: false,
            },
            stats,
        )
    }

    fn schedule_arrival(&mut self, at: SimTime, out: &mut Vec<(SimTime, u64)>) {
        let sent = { self.stats.borrow().sent };
        if sent >= self.cfg.total_requests {
            return;
        }
        self.stats.borrow_mut().sent += 1;
        let req = self.source.next(&mut self.rng);
        self.next_token += 1;
        let tok = TOKEN_ARRIVAL | self.next_token;
        self.pending_arrivals.insert(tok, req);
        out.push((at, tok));
    }

    fn deliver_request(
        &mut self,
        req: Request,
        mem: &mut GuestMemory,
        now: SimTime,
    ) -> Option<Completion> {
        let Some(chain) = self.rx.device_pop(mem).expect("rx queue in RAM") else {
            self.stats.borrow_mut().dropped += 1;
            return None;
        };
        let d = chain.descs.first().expect("chain non-empty");
        // The request departed the client one wire latency ago; latency is
        // measured from that departure.
        let sent = now - self.cfg.wire_latency;
        let mut payload = Vec::with_capacity(PAYLOAD_HEADER);
        payload.extend_from_slice(&sent.as_ps().to_le_bytes());
        payload.extend_from_slice(&req.key.to_le_bytes());
        payload.extend_from_slice(&req.op.to_le_bytes());
        payload.extend_from_slice(&req.vsize.to_le_bytes());
        let n = payload.len().min(d.len as usize);
        mem.write(Hpa(d.addr), &payload[..n])
            .expect("rx buffer in RAM");
        self.rx
            .device_push_used(mem, chain.head, PAYLOAD_HEADER as u32 + req.vsize)
            .expect("rx used in RAM");
        {
            let mut s = self.stats.borrow_mut();
            if s.first_send.is_none() {
                s.first_send = Some(sent);
            }
        }
        Some(Completion {
            vector: self.cfg.irq_vector,
            service: self.cfg.completion_service,
            backend_l1_exits: self.cfg.completion_backend_exits,
            schedule: Vec::new(),
        })
    }

    /// Shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<LoadStats>> {
        Rc::clone(&self.stats)
    }
}

impl DeviceModel for LoadGenNet {
    fn ranges(&self) -> Vec<(Gpa, u64)> {
        vec![(self.cfg.mmio_base, 0x1000)]
    }

    fn mmio_write(
        &mut self,
        gpa: Gpa,
        _value: u64,
        mem: &mut GuestMemory,
        now: SimTime,
    ) -> DeviceOutcome {
        let off = gpa.0 - self.cfg.mmio_base.0;
        let mut out = DeviceOutcome {
            service: self.cfg.kick_service,
            backend_l1_exits: self.cfg.kick_backend_exits,
            schedule: Vec::new(),
        };
        match off {
            regs::START if !self.started => {
                self.started = true;
                match self.cfg.arrival {
                    ArrivalMode::ClosedLoop { concurrency, .. } => {
                        for _ in 0..concurrency {
                            let at = now + self.cfg.wire_latency;
                            self.schedule_arrival(at, &mut out.schedule);
                        }
                    }
                    ArrivalMode::OpenLoop { mean_interarrival } => {
                        // Seed the whole Poisson arrival schedule lazily:
                        // each delivery schedules the next arrival.
                        let gap = self.rng.exp_duration(mean_interarrival);
                        self.schedule_arrival(now + self.cfg.wire_latency + gap, &mut out.schedule);
                    }
                }
                out.backend_l1_exits = 0;
                out.service = SimDuration::ZERO;
            }
            regs::TX_NOTIFY => {
                // Guest posted replies: record latencies, trigger follow-ups.
                while let Some(chain) = self.tx.device_pop(mem).expect("tx queue in RAM") {
                    let d = chain.descs.first().expect("chain non-empty");
                    let send_ps = mem.read_u64(Hpa(d.addr)).expect("tx buffer in RAM");
                    self.tx
                        .device_push_used(mem, chain.head, 0)
                        .expect("tx used in RAM");
                    let reply_arrives = now + self.cfg.wire_latency;
                    let latency = reply_arrives.since(SimTime::from_ps(send_ps));
                    {
                        let mut s = self.stats.borrow_mut();
                        s.latency.record(latency.as_ns());
                        s.completed += 1;
                        s.last_reply = Some(reply_arrives);
                    }
                    if let ArrivalMode::ClosedLoop { think, .. } = self.cfg.arrival {
                        let at = reply_arrives + think + self.cfg.wire_latency;
                        self.schedule_arrival(at, &mut out.schedule);
                    }
                }
            }
            regs::RX_NOTIFY => {
                out.service = self.cfg.kick_service / 4;
            }
            _ => {}
        }
        out
    }

    fn mmio_read(
        &mut self,
        _gpa: Gpa,
        _mem: &mut GuestMemory,
        _now: SimTime,
    ) -> (u64, DeviceOutcome) {
        let s = self.stats.borrow();
        (s.completed, DeviceOutcome::default())
    }

    fn complete(&mut self, token: u64, mem: &mut GuestMemory, now: SimTime) -> Option<Completion> {
        let req = self.pending_arrivals.remove(&token)?;
        let mut comp = self.deliver_request(req, mem, now);
        if let ArrivalMode::OpenLoop { mean_interarrival } = self.cfg.arrival {
            // Chain the next Poisson arrival.
            let gap = self.rng.exp_duration(mean_interarrival);
            let mut schedule = Vec::new();
            self.schedule_arrival(now + gap, &mut schedule);
            match &mut comp {
                Some(c) => c.schedule.extend(schedule),
                None if !schedule.is_empty() => {
                    // Request dropped but arrivals continue: surface the
                    // schedule through a zero-cost completion.
                    comp = Some(Completion {
                        vector: self.cfg.irq_vector,
                        service: SimDuration::ZERO,
                        backend_l1_exits: 0,
                        schedule,
                    });
                }
                None => {}
            }
        }
        comp
    }

    fn obs_counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats.borrow();
        vec![
            ("loadgen_sent", s.sent),
            ("loadgen_completed", s.completed),
            ("loadgen_dropped", s.dropped),
            ("loadgen_inflight", self.pending_arrivals.len() as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(arrival: ArrivalMode, total: u64) -> (GuestMemory, LoadGenNet, Virtqueue, Virtqueue) {
        let mut mem = GuestMemory::new(1 << 20);
        let mut txd = Virtqueue::new(Hpa(0x1000), 16);
        let mut rxd = Virtqueue::new(Hpa(0x2000), 16);
        txd.init(&mut mem).unwrap();
        rxd.init(&mut mem).unwrap();
        let cfg = LoadGenConfig {
            mmio_base: Gpa(0x4000_0000),
            irq_vector: 0x50,
            wire_latency: SimDuration::from_us(14),
            kick_service: SimDuration::from_us(2),
            completion_service: SimDuration::from_us(2),
            kick_backend_exits: 1,
            completion_backend_exits: 1,
            arrival,
            total_requests: total,
            seed: 1,
        };
        let source = Box::new(FixedSource {
            request: Request {
                op: 0,
                key: 9,
                vsize: 1,
            },
        });
        let (dev, _) = LoadGenNet::new(
            cfg,
            source,
            Virtqueue::new(Hpa(0x1000), 16),
            Virtqueue::new(Hpa(0x2000), 16),
        );
        (mem, dev, txd, rxd)
    }

    #[test]
    fn start_schedules_first_arrival_after_wire() {
        let (mut mem, mut dev, _txd, _rxd) = setup(
            ArrivalMode::ClosedLoop {
                concurrency: 1,
                think: SimDuration::ZERO,
            },
            10,
        );
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::START), 1, &mut mem, SimTime::ZERO);
        assert_eq!(out.schedule.len(), 1);
        assert_eq!(out.schedule[0].0, SimTime::from_us(14));
        assert_eq!(dev.stats_handle().borrow().sent, 1);
    }

    #[test]
    fn request_payload_lands_in_posted_buffer() {
        let (mut mem, mut dev, _txd, mut rxd) = setup(
            ArrivalMode::ClosedLoop {
                concurrency: 1,
                think: SimDuration::ZERO,
            },
            10,
        );
        rxd.driver_add(&mut mem, &[(0x9000, 256, true)]).unwrap();
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::START), 1, &mut mem, SimTime::ZERO);
        let (at, tok) = out.schedule[0];
        let comp = dev.complete(tok, &mut mem, at).unwrap();
        assert_eq!(comp.vector, 0x50);
        // The payload carries the client departure timestamp (one wire
        // latency before arrival) and the key.
        let sent = at - SimDuration::from_us(14);
        assert_eq!(mem.read_u64(Hpa(0x9000)).unwrap(), sent.as_ps());
        assert_eq!(mem.read_u64(Hpa(0x9008)).unwrap(), 9);
        assert!(rxd.driver_take_used(&mem).unwrap().is_some());
    }

    #[test]
    fn reply_records_latency_and_chains_next_request() {
        let (mut mem, mut dev, mut txd, mut rxd) = setup(
            ArrivalMode::ClosedLoop {
                concurrency: 1,
                think: SimDuration::from_us(2),
            },
            10,
        );
        rxd.driver_add(&mut mem, &[(0x9000, 256, true)]).unwrap();
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::START), 1, &mut mem, SimTime::ZERO);
        let (at, tok) = out.schedule[0];
        dev.complete(tok, &mut mem, at).unwrap();
        // Guest "processes" for 5us, echoes the timestamp in its reply.
        let send_ps = mem.read_u64(Hpa(0x9000)).unwrap();
        mem.write_u64(Hpa(0xb000), send_ps).unwrap();
        txd.driver_add(&mut mem, &[(0xb000, 64, false)]).unwrap();
        let reply_time = at + SimDuration::from_us(5);
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::TX_NOTIFY), 1, &mut mem, reply_time);
        let stats = dev.stats_handle();
        let s = stats.borrow();
        assert_eq!(s.completed, 1);
        // Latency = request wire (14us) + processing (5us) + return wire
        // (14us).
        assert!((s.latency.samples()[0] - 33_000.0).abs() < 1.0);
        drop(s);
        // Next request scheduled: reply_arrival + think + wire.
        assert_eq!(out.schedule.len(), 1);
        assert_eq!(
            out.schedule[0].0,
            reply_time + SimDuration::from_us(14 + 2 + 14)
        );
    }

    #[test]
    fn open_loop_arrivals_continue_without_replies() {
        let (mut mem, mut dev, _txd, mut rxd) = setup(
            ArrivalMode::OpenLoop {
                mean_interarrival: SimDuration::from_us(100),
            },
            1000,
        );
        for i in 0..8u64 {
            rxd.driver_add(&mut mem, &[(0x9000 + i * 0x100, 256, true)])
                .unwrap();
        }
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::START), 1, &mut mem, SimTime::ZERO);
        let mut due = out.schedule;
        let mut delivered = 0;
        while delivered < 5 {
            let (at, tok) = due.remove(0);
            if let Some(c) = dev.complete(tok, &mut mem, at) {
                due.extend(c.schedule);
                delivered += 1;
            }
        }
        assert_eq!(dev.stats_handle().borrow().sent, 6);
    }

    #[test]
    fn stops_at_total_requests() {
        let (mut mem, mut dev, _txd, mut rxd) = setup(
            ArrivalMode::ClosedLoop {
                concurrency: 4,
                think: SimDuration::ZERO,
            },
            2,
        );
        rxd.driver_add(&mut mem, &[(0x9000, 256, true)]).unwrap();
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::START), 1, &mut mem, SimTime::ZERO);
        // Concurrency 4 but only 2 total requests budgeted.
        assert_eq!(out.schedule.len(), 2);
        assert_eq!(dev.stats_handle().borrow().sent, 2);
    }

    #[test]
    fn dropped_when_no_rx_buffer() {
        let (mut mem, mut dev, _txd, _rxd) = setup(
            ArrivalMode::ClosedLoop {
                concurrency: 1,
                think: SimDuration::ZERO,
            },
            10,
        );
        let out = dev.mmio_write(Gpa(0x4000_0000 + regs::START), 1, &mut mem, SimTime::ZERO);
        let (at, tok) = out.schedule[0];
        assert!(dev.complete(tok, &mut mem, at).is_none());
        assert_eq!(dev.stats_handle().borrow().dropped, 1);
    }
}

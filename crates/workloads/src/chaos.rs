//! Chaos campaigns: serving workloads under deterministic fault injection.
//!
//! Runs the sharded memcached SMP workload with an armed
//! [`FaultPlan`] installed in the machine and harvests everything the
//! robustness story needs in one structured point: per-kind injection
//! counts, the recovery counters (retries, timeouts, duplicate drops),
//! the degradation state machine's transitions and fallback share, and
//! all causal-graph watchdog verdicts. One `(seed, rate)` pair fully
//! determines a run.

use svt_core::{smp_machine, SwitchMode};
use svt_hv::GuestProgram;
use svt_obs::{MetricKey, WATCHDOGS};
use svt_sim::{FaultPlan, SimDuration, SimTime};

use crate::harness::attach_loadgen_for_seeded;
use crate::kvstore::{EtcSource, KvService};
use crate::loadgen::ArrivalMode;
use crate::server::{RrServer, ServerConfig};
use crate::smp::SmpPoint;

/// Everything one chaos run reports.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// The serving-side result (throughput, latency), as in fault-free runs.
    pub point: SmpPoint,
    /// The fault plan's seed.
    pub seed: u64,
    /// Per-kind injected-fault counts, `(kind name, count)`.
    pub injected: Vec<(&'static str, u64)>,
    /// Total faults injected across all kinds.
    pub total_injected: u64,
    /// Channel retransmission attempts.
    pub retransmits: u64,
    /// Bounded-wait expirations (lost doorbells / dropped commands).
    pub timeouts: u64,
    /// Stale or duplicated ring entries discarded by the sequence check.
    pub duplicates_dropped: u64,
    /// Commands rejected for corruption, malformation or wrong kind.
    pub protocol_errors: u64,
    /// Interconnect-level IPI retransmissions (injected drops).
    pub ipi_retransmits: u64,
    /// Duplicate IPIs absorbed by the receiver's exactly-once check.
    pub ipi_duplicates_absorbed: u64,
    /// Degradation-policy transitions, `(label, count)`, taken edges only.
    pub transitions: Vec<(&'static str, u64)>,
    /// Traps served through the ring protocol.
    pub ring_traps: u64,
    /// Traps served through the classic world-switch fallback.
    pub fallback_traps: u64,
    /// Traps whose resume leg alone fell back.
    pub resume_fallbacks: u64,
    /// Every causal watchdog with its violation count (zeros included).
    pub watchdogs: Vec<(&'static str, u64)>,
    /// Simulated traps the run served (L2 vm-exits plus L0 direct
    /// exits) — the self-benchmark's unit of work.
    pub traps: u64,
}

impl ChaosPoint {
    /// Share of reflected traps served by the fallback path, in [0, 1].
    pub fn fallback_rate(&self) -> f64 {
        let total = self.ring_traps + self.fallback_traps;
        if total == 0 {
            0.0
        } else {
            self.fallback_traps as f64 / total as f64
        }
    }

    /// Sum of all watchdog violations (zero on a healthy run).
    pub fn watchdog_violations(&self) -> u64 {
        self.watchdogs.iter().map(|&(_, n)| n).sum()
    }

    /// Serializes the point for campaign checkpoints.
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        self.point.snap_save(w);
        w.u64(self.seed);
        pairs_save(&self.injected, w);
        w.u64(self.total_injected);
        w.u64(self.retransmits);
        w.u64(self.timeouts);
        w.u64(self.duplicates_dropped);
        w.u64(self.protocol_errors);
        w.u64(self.ipi_retransmits);
        w.u64(self.ipi_duplicates_absorbed);
        pairs_save(&self.transitions, w);
        w.u64(self.ring_traps);
        w.u64(self.fallback_traps);
        w.u64(self.resume_fallbacks);
        pairs_save(&self.watchdogs, w);
        w.u64(self.traps);
    }

    /// Decodes a point written by [`ChaosPoint::snap_save`]. Label keys
    /// (fault kinds, transitions, watchdogs) re-intern to `&'static str`
    /// via `svt_sim::snapshot::intern_static` — the universe of such
    /// names is the fixed in-tree set.
    ///
    /// # Errors
    ///
    /// Propagates reader errors on truncated or corrupted payloads.
    pub fn snap_load(r: &mut svt_sim::SnapReader<'_>) -> Result<ChaosPoint, svt_sim::SnapError> {
        Ok(ChaosPoint {
            point: SmpPoint::snap_load(r)?,
            seed: r.u64()?,
            injected: pairs_load(r)?,
            total_injected: r.u64()?,
            retransmits: r.u64()?,
            timeouts: r.u64()?,
            duplicates_dropped: r.u64()?,
            protocol_errors: r.u64()?,
            ipi_retransmits: r.u64()?,
            ipi_duplicates_absorbed: r.u64()?,
            transitions: pairs_load(r)?,
            ring_traps: r.u64()?,
            fallback_traps: r.u64()?,
            resume_fallbacks: r.u64()?,
            watchdogs: pairs_load(r)?,
            traps: r.u64()?,
        })
    }
}

fn pairs_save(v: &[(&'static str, u64)], w: &mut svt_sim::SnapWriter) {
    w.usize(v.len());
    for &(name, n) in v {
        w.str(name);
        w.u64(n);
    }
}

fn pairs_load(
    r: &mut svt_sim::SnapReader<'_>,
) -> Result<Vec<(&'static str, u64)>, svt_sim::SnapError> {
    let len = r.usize()?;
    let mut v = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        let name = svt_sim::snapshot::intern_static(r.str()?);
        v.push((name, r.u64()?));
    }
    Ok(v)
}

/// Sharded memcached under per-vCPU open-loop ETC load with `plan`
/// armed on the machine. The same `(plan seed, rates, schedule)` always
/// produces the same point, bit for bit.
///
/// # Panics
///
/// Panics if `n_vcpus` is zero or exceeds the machine's physical cores,
/// or if no lane completes any request (an injection-survival failure:
/// liveness is part of the contract).
pub fn memcached_chaos(
    mode: SwitchMode,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    plan: FaultPlan,
) -> ChaosPoint {
    let mean = SimDuration::from_ns_f64(1e9 / rate_qps);
    let mut m = smp_machine(mode, n_vcpus);
    let seed = plan.seed();
    m.faults = plan;
    // The causal graph doubles as the run's invariant monitor: its
    // watchdogs must stay silent even under injection.
    m.obs.causal.enable();
    let cost = m.cost.clone();
    let mut stats = Vec::with_capacity(n_vcpus);
    let mut servers: Vec<RrServer> = Vec::with_capacity(n_vcpus);
    for v in 0..n_vcpus {
        let source = Box::new(EtcSource::new(100_000));
        // Lanes keep the default request streams regardless of the fault
        // seed: every cell of a fault-rate sweep then serves identical
        // load, so throughput differences are attributable to the faults.
        stats.push(attach_loadgen_for_seeded(
            &mut m,
            v,
            ArrivalMode::OpenLoop {
                mean_interarrival: mean,
            },
            requests,
            source,
            crate::harness::DEFAULT_LANE_SEED,
        ));
        let mut cfg = ServerConfig::rr_on_lane(&cost, u64::MAX, v);
        cfg.timer_rearm_every = 4;
        cfg.replenish_every = 2;
        servers.push(RrServer::new(cfg, Box::new(KvService::new(50_000))));
    }
    let horizon = SimTime::ZERO
        + SimDuration::from_ns_f64(requests as f64 * mean.as_ns())
        + SimDuration::from_ms(80);
    let mut progs: Vec<&mut dyn GuestProgram> = servers
        .iter_mut()
        .map(|s| s as &mut dyn GuestProgram)
        .collect();
    m.run_smp(&mut progs, horizon)
        .expect("chaos run survives injection");
    harvest(&m, seed, crate::smp::collect(n_vcpus, &stats))
}

fn harvest(m: &svt_hv::Machine, seed: u64, point: SmpPoint) -> ChaosPoint {
    let total = |name: &str| m.obs.metrics.counter_total(name);
    let injected = m.faults.injected_counts();
    let total_injected = m.faults.total_injected();
    let taken: Vec<(&'static str, u64)> = [
        "healthy->degraded",
        "degraded->fallen_back",
        "fallen_back->degraded",
        "degraded->healthy",
    ]
    .into_iter()
    .map(|label| {
        let key = MetricKey::new("svt_state_transition")
            .exit(label)
            .reflector("sw-svt");
        (label, m.obs.metrics.counter(key))
    })
    .filter(|&(_, n)| n > 0)
    .collect();
    let watchdogs = WATCHDOGS
        .iter()
        .map(|&name| {
            let n = m
                .obs
                .causal
                .violations()
                .find(|&(k, _)| k == name)
                .map_or(0, |(_, n)| n);
            (name, n)
        })
        .collect();
    ChaosPoint {
        point,
        seed,
        injected,
        total_injected,
        retransmits: total("svt_retransmits"),
        timeouts: total("svt_timeouts"),
        duplicates_dropped: total("svt_duplicates_dropped"),
        protocol_errors: total("svt_protocol_errors"),
        ipi_retransmits: total("ipi_retransmits"),
        ipi_duplicates_absorbed: total("ipi_duplicates_absorbed"),
        transitions: taken,
        ring_traps: total("svt_trap_ring"),
        fallback_traps: total("svt_trap_fallback"),
        resume_fallbacks: total("svt_resume_fallback"),
        watchdogs,
        traps: total("vm_exit") + total("l0_direct_exit"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_chaos_matches_plain_smp() {
        let plain = crate::smp::memcached_smp(SwitchMode::SwSvt, 2, 2_000.0, 60);
        let chaos = memcached_chaos(SwitchMode::SwSvt, 2, 2_000.0, 60, FaultPlan::none());
        assert_eq!(chaos.point, plain);
        assert_eq!(chaos.total_injected, 0);
        assert_eq!(chaos.retransmits, 0);
        assert_eq!(chaos.watchdog_violations(), 0);
        assert_eq!(chaos.fallback_rate(), 0.0);
    }

    #[test]
    fn injected_faults_are_survived_and_counted() {
        let plan = FaultPlan::uniform(0xC4A05, 0.08);
        let chaos = memcached_chaos(SwitchMode::SwSvt, 2, 2_000.0, 80, plan);
        assert!(chaos.total_injected > 0, "plan injected nothing");
        assert!(chaos.point.completed > 0, "no requests survived");
        assert_eq!(
            chaos.watchdog_violations(),
            0,
            "watchdogs fired: {:?}",
            chaos.watchdogs
        );
        // Recovery actually ran: injected channel faults left retry marks.
        assert!(
            chaos.retransmits + chaos.timeouts + chaos.duplicates_dropped > 0,
            "{chaos:?}"
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_campaigns() {
        let a = memcached_chaos(
            SwitchMode::SwSvt,
            2,
            2_000.0,
            60,
            FaultPlan::uniform(7, 0.05),
        );
        let b = memcached_chaos(
            SwitchMode::SwSvt,
            2,
            2_000.0,
            60,
            FaultPlan::uniform(7, 0.05),
        );
        assert_eq!(a.point, b.point);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.transitions, b.transitions);
    }
}

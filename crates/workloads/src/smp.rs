//! SMP workload runners: sharded memcached and TPC-C on the N-vCPU machine.
//!
//! Each vCPU gets a full private serving lane — its own load-generator
//! NIC (and, for TPC-C, its own virtio-blk WAL device) on its own queue
//! memory and MMIO window, with device completions routed only to that
//! vCPU — plus its own shard of the application (a private [`KvService`]
//! or TPC-C warehouse set, as memcached and most sharded stores deploy on
//! SMP guests). Throughput is the sum over the per-vCPU load generators;
//! with one vCPU the numbers are bit-identical to the single-vCPU runners.

use svt_arch::ArchId;
use svt_core::{smp_machine_on, SwitchMode};
use svt_hv::GuestProgram;
use svt_obs::{folded_stacks, CriticalPath};
use svt_sim::{SimDuration, SimTime};

use crate::harness::{attach_blk_for, attach_loadgen_for_seeded, DEFAULT_LANE_SEED};
use crate::kvstore::{EtcSource, KvService};
use crate::layout;
use crate::loadgen::ArrivalMode;
use crate::server::{RrServer, ServerConfig};
use crate::tpcc::{TpccService, TpccSource};

/// Aggregate result of one SMP serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpPoint {
    /// vCPUs the guest ran with.
    pub n_vcpus: usize,
    /// Requests (or statements) completed across all lanes.
    pub completed: u64,
    /// Aggregate throughput in completions/second over the union of the
    /// lanes' active windows.
    pub throughput: f64,
    /// Mean end-to-end latency over all lanes, in nanoseconds.
    pub avg_ns: f64,
    /// Worst per-lane 99th-percentile latency, in nanoseconds.
    pub p99_ns: f64,
}

impl SmpPoint {
    /// Serializes the point for campaign checkpoints (bit-exact floats,
    /// see `svt_sim::snapshot`).
    pub fn snap_save(&self, w: &mut svt_sim::SnapWriter) {
        w.usize(self.n_vcpus);
        w.u64(self.completed);
        w.f64(self.throughput);
        w.f64(self.avg_ns);
        w.f64(self.p99_ns);
    }

    /// Decodes a point written by [`SmpPoint::snap_save`].
    ///
    /// # Errors
    ///
    /// Propagates reader errors on truncated or corrupted payloads.
    pub fn snap_load(r: &mut svt_sim::SnapReader<'_>) -> Result<SmpPoint, svt_sim::SnapError> {
        Ok(SmpPoint {
            n_vcpus: r.usize()?,
            completed: r.u64()?,
            throughput: r.f64()?,
            avg_ns: r.f64()?,
            p99_ns: r.f64()?,
        })
    }
}

/// Causal-profiling products of one SMP run: the per-request critical
/// paths extracted from the machine's causal event graph, their folded
/// (FlameGraph-style) rendering, and the watchdog verdicts.
#[derive(Debug, Clone)]
pub struct CausalProfile {
    /// One critical path per completed request, in completion order.
    pub paths: Vec<CriticalPath>,
    /// Folded stacks (`vcpu;LEVEL;phase weight` lines).
    pub folded: String,
    /// `(watchdog name, violation count)` pairs, non-zero entries only.
    pub violations: Vec<(&'static str, u64)>,
    /// Causal events recorded over the run.
    pub events_recorded: u64,
    /// Events evicted by the graph's bounded ring.
    pub events_dropped: u64,
    /// The run's trap-lifecycle spans (for Chrome traces).
    pub spans: Vec<svt_obs::Span>,
    /// Cross-lane causal edges as Chrome flow arrows.
    pub flows: Vec<svt_obs::FlowArrow>,
}

/// Sharded memcached under per-vCPU open-loop ETC load.
///
/// Each vCPU serves `rate_qps` of offered load from its own generator
/// until `requests` requests per lane have been issued.
///
/// # Panics
///
/// Panics if `n_vcpus` is zero or exceeds the machine's physical cores,
/// or if no lane completes any request.
pub fn memcached_smp(mode: SwitchMode, n_vcpus: usize, rate_qps: f64, requests: u64) -> SmpPoint {
    memcached_run(
        mode,
        ArchId::X86,
        n_vcpus,
        rate_qps,
        requests,
        false,
        DEFAULT_LANE_SEED,
    )
    .0
}

/// [`memcached_smp`] with an explicit base seed for the per-lane request
/// streams (lane `v` draws from `seed + v`).
///
/// # Panics
///
/// As [`memcached_smp`].
pub fn memcached_smp_seeded(
    mode: SwitchMode,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    seed: u64,
) -> SmpPoint {
    memcached_run(mode, ArchId::X86, n_vcpus, rate_qps, requests, false, seed).0
}

/// [`memcached_smp_seeded`] on an explicit ISA backend.
///
/// # Panics
///
/// As [`memcached_smp`].
pub fn memcached_smp_seeded_on(
    mode: SwitchMode,
    arch: ArchId,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    seed: u64,
) -> SmpPoint {
    memcached_run(mode, arch, n_vcpus, rate_qps, requests, false, seed).0
}

/// [`memcached_smp_seeded_on`] with the causal event graph enabled;
/// additionally returns the run's critical-path profile (including the
/// watchdog verdicts the riscv CI smoke checks).
///
/// # Panics
///
/// As [`memcached_smp`].
pub fn memcached_smp_profiled_seeded_on(
    mode: SwitchMode,
    arch: ArchId,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    seed: u64,
) -> (SmpPoint, CausalProfile) {
    let (p, prof, _) = memcached_run(mode, arch, n_vcpus, rate_qps, requests, true, seed);
    (p, prof.expect("profiled run harvests a causal profile"))
}

/// [`memcached_smp_seeded`] additionally returning the number of
/// simulated traps the run served (L2 vm-exits plus L0 direct exits) —
/// the unit of work the wall-clock self-benchmark divides host time by.
///
/// # Panics
///
/// As [`memcached_smp`].
pub fn memcached_smp_counted_seeded(
    mode: SwitchMode,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    seed: u64,
) -> (SmpPoint, u64) {
    let (p, _, traps) = memcached_run(mode, ArchId::X86, n_vcpus, rate_qps, requests, false, seed);
    (p, traps)
}

/// [`memcached_smp`] with the causal event graph enabled; additionally
/// returns the run's critical-path profile.
///
/// # Panics
///
/// As [`memcached_smp`].
pub fn memcached_smp_profiled(
    mode: SwitchMode,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
) -> (SmpPoint, CausalProfile) {
    memcached_smp_profiled_seeded(mode, n_vcpus, rate_qps, requests, DEFAULT_LANE_SEED)
}

/// [`memcached_smp_profiled`] with an explicit base seed for the
/// per-lane request streams.
///
/// # Panics
///
/// As [`memcached_smp`].
pub fn memcached_smp_profiled_seeded(
    mode: SwitchMode,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    seed: u64,
) -> (SmpPoint, CausalProfile) {
    let (p, prof, _) = memcached_run(mode, ArchId::X86, n_vcpus, rate_qps, requests, true, seed);
    (p, prof.expect("profiled run harvests a causal profile"))
}

#[allow(clippy::too_many_arguments)]
fn memcached_run(
    mode: SwitchMode,
    arch: ArchId,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    profile: bool,
    lane_seed: u64,
) -> (SmpPoint, Option<CausalProfile>, u64) {
    let mean = SimDuration::from_ns_f64(1e9 / rate_qps);
    let mut m = smp_machine_on(mode, arch, n_vcpus);
    if profile {
        m.obs.spans.enable();
        m.obs.causal.enable();
    }
    let cost = m.cost.clone();
    let mut stats = Vec::with_capacity(n_vcpus);
    let mut servers: Vec<RrServer> = Vec::with_capacity(n_vcpus);
    for v in 0..n_vcpus {
        let source = Box::new(EtcSource::new(100_000));
        stats.push(attach_loadgen_for_seeded(
            &mut m,
            v,
            ArrivalMode::OpenLoop {
                mean_interarrival: mean,
            },
            requests,
            source,
            lane_seed,
        ));
        let mut cfg = ServerConfig::rr_on_lane(&cost, u64::MAX, v);
        cfg.timer_rearm_every = 4;
        cfg.replenish_every = 2;
        // One kv shard per vCPU: no cross-vCPU application state.
        servers.push(RrServer::new(cfg, Box::new(KvService::new(50_000))));
    }
    let horizon = SimTime::ZERO
        + SimDuration::from_ns_f64(requests as f64 * mean.as_ns())
        + SimDuration::from_ms(80);
    run_servers(&mut m, &mut servers, horizon);
    let prof = profile.then(|| harvest_profile(&m));
    let traps =
        m.obs.metrics.counter_total("vm_exit") + m.obs.metrics.counter_total("l0_direct_exit");
    let point = collect(n_vcpus, &stats);
    // Guest memory, EPT webs and the kv shards are freed after `run_end`
    // closed the machine's profiling window; attribute that to Teardown.
    svt_obs::hostprof::charge_block(svt_obs::HostPart::Teardown, move || {
        drop(servers);
        drop(m);
    });
    (point, prof, traps)
}

/// Sharded TPC-C: per-vCPU closed-loop clients, each lane persisting its
/// WAL to its own virtio-blk device. `transactions` counts whole TPC-C
/// transactions per lane.
///
/// # Panics
///
/// Panics if `n_vcpus` is zero or exceeds the machine's physical cores,
/// or if no lane completes any statement.
pub fn tpcc_smp(mode: SwitchMode, n_vcpus: usize, transactions: u64) -> SmpPoint {
    tpcc_run(mode, n_vcpus, transactions, false, DEFAULT_LANE_SEED).0
}

/// [`tpcc_smp`] with an explicit base seed for the per-lane request
/// streams (lane `v` draws from `seed + v`).
///
/// # Panics
///
/// As [`tpcc_smp`].
pub fn tpcc_smp_seeded(mode: SwitchMode, n_vcpus: usize, transactions: u64, seed: u64) -> SmpPoint {
    tpcc_run(mode, n_vcpus, transactions, false, seed).0
}

/// [`tpcc_smp`] with the causal event graph enabled; additionally
/// returns the run's critical-path profile.
///
/// # Panics
///
/// As [`tpcc_smp`].
pub fn tpcc_smp_profiled(
    mode: SwitchMode,
    n_vcpus: usize,
    transactions: u64,
) -> (SmpPoint, CausalProfile) {
    tpcc_smp_profiled_seeded(mode, n_vcpus, transactions, DEFAULT_LANE_SEED)
}

/// [`tpcc_smp_profiled`] with an explicit base seed for the per-lane
/// request streams.
///
/// # Panics
///
/// As [`tpcc_smp`].
pub fn tpcc_smp_profiled_seeded(
    mode: SwitchMode,
    n_vcpus: usize,
    transactions: u64,
    seed: u64,
) -> (SmpPoint, CausalProfile) {
    let (p, prof) = tpcc_run(mode, n_vcpus, transactions, true, seed);
    (p, prof.expect("profiled run harvests a causal profile"))
}

fn tpcc_run(
    mode: SwitchMode,
    n_vcpus: usize,
    transactions: u64,
    profile: bool,
    lane_seed: u64,
) -> (SmpPoint, Option<CausalProfile>) {
    let statements = transactions * 34;
    let mut m = smp_machine_on(mode, ArchId::X86, n_vcpus);
    if profile {
        m.obs.spans.enable();
        m.obs.causal.enable();
    }
    let cost = m.cost.clone();
    let mut stats = Vec::with_capacity(n_vcpus);
    let mut servers: Vec<RrServer> = Vec::with_capacity(n_vcpus);
    for v in 0..n_vcpus {
        let source = Box::new(TpccSource::new(4));
        stats.push(attach_loadgen_for_seeded(
            &mut m,
            v,
            ArrivalMode::ClosedLoop {
                concurrency: 4,
                think: SimDuration::from_us(15),
            },
            statements,
            source,
            lane_seed,
        ));
        attach_blk_for(&mut m, v);
        let mut cfg = ServerConfig::rr_on_lane(&cost, statements, v);
        cfg.blk_mmio = Some(layout::lane(v).blk_mmio);
        cfg.timer_rearm_every = 2;
        cfg.replenish_every = 2;
        // One warehouse set per vCPU, as sharded OLTP deployments do.
        let (service, _db) = TpccService::new(4);
        servers.push(RrServer::new(cfg, Box::new(service)));
    }
    run_servers(&mut m, &mut servers, SimTime::MAX);
    let prof = profile.then(|| harvest_profile(&m));
    let point = collect(n_vcpus, &stats);
    svt_obs::hostprof::charge_block(svt_obs::HostPart::Teardown, move || {
        drop(servers);
        drop(m);
    });
    (point, prof)
}

/// Extracts the causal products after a profiled run. `run_smp` has
/// already swept the graph's watchdogs at the end-of-run clock.
fn harvest_profile(m: &svt_hv::Machine) -> CausalProfile {
    let paths = m.obs.causal.critical_paths();
    let folded = folded_stacks(&paths);
    let violations = m.obs.causal.violations().filter(|&(_, n)| n > 0).collect();
    CausalProfile {
        paths,
        folded,
        violations,
        events_recorded: m.obs.causal.recorded(),
        events_dropped: m.obs.causal.dropped(),
        spans: m.obs.spans.to_vec(),
        flows: m.obs.causal.flow_arrows(),
    }
}

fn run_servers(m: &mut svt_hv::Machine, servers: &mut [RrServer], horizon: SimTime) {
    let mut progs: Vec<&mut dyn GuestProgram> = servers
        .iter_mut()
        .map(|s| s as &mut dyn GuestProgram)
        .collect();
    m.run_smp(&mut progs, horizon).expect("smp run completes");
}

pub(crate) fn collect(
    n_vcpus: usize,
    stats: &[std::rc::Rc<std::cell::RefCell<crate::loadgen::LoadStats>>],
) -> SmpPoint {
    let mut completed = 0;
    let mut lat_sum = 0.0;
    let mut p99 = 0.0f64;
    let mut first: Option<SimTime> = None;
    let mut last: Option<SimTime> = None;
    for s in stats {
        let s = s.borrow();
        completed += s.completed;
        lat_sum += s.latency.mean() * s.completed as f64;
        p99 = p99.max(s.latency.p99());
        first = match (first, s.first_send) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        last = match (last, s.last_reply) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
    let span = last
        .expect("replies received")
        .since(first.expect("requests sent"))
        .as_secs();
    assert!(span > 0.0, "degenerate measurement window");
    SmpPoint {
        n_vcpus,
        completed,
        throughput: completed as f64 / span,
        avg_ns: lat_sum / completed as f64,
        p99_ns: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_vcpu_matches_single_vcpu_memcached() {
        // The SMP runner at n=1 sees the same machine, same lane, same
        // seed as the single-vCPU Fig. 8 runner.
        let smp = memcached_smp(SwitchMode::Baseline, 1, 2_000.0, 120);
        let single = crate::fig8::memcached_point(SwitchMode::Baseline, 2_000.0, 120);
        assert!(
            (smp.throughput - single.throughput).abs() < 1e-6,
            "smp {} vs single {}",
            smp.throughput,
            single.throughput
        );
        assert!((smp.avg_ns - single.avg_ns).abs() < 1e-6);
    }

    #[test]
    fn memcached_scales_with_vcpus() {
        let mut prev = 0.0;
        for n in [1usize, 2, 4] {
            let p = memcached_smp(SwitchMode::SwSvt, n, 2_000.0, 80);
            assert!(
                p.throughput > prev,
                "{n} vCPUs: {} not above {prev}",
                p.throughput
            );
            prev = p.throughput;
        }
    }

    #[test]
    fn riscv_memcached_runs_all_engines_cleanly() {
        for mode in SwitchMode::ALL {
            let (p, prof) = memcached_smp_profiled_seeded_on(
                mode,
                ArchId::Riscv,
                2,
                2_000.0,
                40,
                DEFAULT_LANE_SEED,
            );
            assert!(p.completed > 0, "{mode}: no requests completed");
            assert!(
                prof.violations.is_empty(),
                "{mode}: watchdogs tripped {:?}",
                prof.violations
            );
        }
    }

    #[test]
    fn tpcc_scales_with_vcpus() {
        let one = tpcc_smp(SwitchMode::HwSvt, 1, 30);
        let two = tpcc_smp(SwitchMode::HwSvt, 2, 30);
        assert!(
            two.throughput > one.throughput,
            "1 vCPU {} vs 2 vCPUs {}",
            one.throughput,
            two.throughput
        );
        assert_eq!(two.completed, 2 * one.completed);
    }
}

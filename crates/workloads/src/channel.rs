//! § 6.1 channel study: communication-mechanism micro-benchmarks.
//!
//! Reproduces the paper's feasibility analysis of the SW-SVt channel:
//! the latency of signaling a waiting thread via a function call,
//! polling, `monitor`/`mwait` or a mutex, across thread placements and
//! surrounding workload sizes, including the cycles a busy-polling SMT
//! sibling steals from the worker. Values derive from the calibrated
//! [`CostModel`]; the conclusions the paper draws (mwait is the best
//! compromise on SMT; cross-NUMA is an order of magnitude worse) are
//! asserted by the tests.

use svt_mem::{CommandRing, GuestMemory, Hpa};
use svt_sim::{Clock, CostModel, CostPart, Placement, SimDuration};
use svt_stats::Convergence;

/// A signaling mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Plain function call (the no-channel baseline).
    FunctionCall,
    /// Busy polling on a shared cache line.
    Polling,
    /// `monitor`/`mwait` on the doorbell line.
    Mwait,
    /// Kernel futex.
    Mutex,
}

impl Mechanism {
    /// All mechanisms, in the paper's discussion order.
    pub const ALL: [Mechanism; 4] = [
        Mechanism::FunctionCall,
        Mechanism::Polling,
        Mechanism::Mwait,
        Mechanism::Mutex,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::FunctionCall => "function call",
            Mechanism::Polling => "polling",
            Mechanism::Mwait => "mwait",
            Mechanism::Mutex => "mutex",
        }
    }
}

/// One cell of the channel study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelCell {
    /// Mechanism measured.
    pub mechanism: Mechanism,
    /// Placement of the waiter relative to the worker.
    pub placement: Placement,
    /// Surrounding workload per round (dependent increments).
    pub workload_increments: u64,
    /// Signal-to-handler latency in nanoseconds.
    pub latency_ns: f64,
    /// Total per-round cost including the overhead the waiting mechanism
    /// imposes on the worker (the quantity that grows for polling on SMT).
    pub round_ns: f64,
}

/// Fraction of worker cycles a busy-polling SMT sibling steals.
pub const POLL_SMT_STEAL_RATIO: f64 = 0.18;

/// Computes one cell of the study.
pub fn channel_cell(
    cost: &CostModel,
    mechanism: Mechanism,
    placement: Placement,
    workload_increments: u64,
) -> ChannelCell {
    let work = SimDuration::from_ps(cost.workload_increment.as_ps() * workload_increments);
    let line = cost.cacheline(placement);
    let latency_ns = match mechanism {
        Mechanism::FunctionCall => cost.function_call.as_ns(),
        Mechanism::Polling => (cost.poll_iter + line).as_ns(),
        Mechanism::Mwait => (cost.monitor_arm + cost.mwait_wake(placement)).as_ns(),
        Mechanism::Mutex => {
            // A mutex spins briefly in user space before sleeping: small
            // workloads are caught by the spin, longer ones pay the
            // kernel wake.
            if work < cost.mutex_spin_grace {
                (cost.mutex_spin_grace + line).as_ns()
            } else {
                (cost.mutex_wake + line).as_ns()
            }
        }
    };
    let steal_ns = match (mechanism, placement) {
        (Mechanism::Polling, Placement::SmtSibling) => work.as_ns() * POLL_SMT_STEAL_RATIO,
        _ => 0.0,
    };
    ChannelCell {
        mechanism,
        placement,
        workload_increments,
        latency_ns,
        round_ns: work.as_ns() + latency_ns + steal_ns,
    }
}

/// The full study: all mechanisms × remote placements × workload sizes.
pub fn channel_study(cost: &CostModel, workload_sizes: &[u64]) -> Vec<ChannelCell> {
    let mut cells = Vec::new();
    for &w in workload_sizes {
        for p in Placement::ALL_REMOTE {
            for m in Mechanism::ALL {
                if m == Mechanism::FunctionCall && p != Placement::SmtSibling {
                    continue; // a call has no placement dimension
                }
                cells.push(channel_cell(cost, m, p, w));
            }
        }
    }
    cells
}

/// The paper's workload-size axis.
pub fn default_workloads() -> Vec<u64> {
    vec![0, 64, 512, 4096, 16_384, 65_536]
}

/// Runs the channel micro-benchmark as an actual simulation rather than a
/// closed-form computation: a requester pushes commands through a real
/// [`CommandRing`] in guest memory, the responder wakes via the chosen
/// mechanism, does the surrounding workload, and answers through a second
/// ring — repeated until the paper's convergence criterion (2σ CI within
/// 1 % of the mean after 4σ outlier filtering) is met. Returns the mean
/// round time in nanoseconds.
///
/// # Panics
///
/// Panics on [`Placement::SameThread`] with any mechanism other than the
/// function call (a thread cannot signal itself).
pub fn simulate_channel_round_ns(
    cost: &CostModel,
    mechanism: Mechanism,
    placement: Placement,
    workload_increments: u64,
) -> f64 {
    let mut ram = GuestMemory::new(1 << 20);
    let cmd = CommandRing::new(Hpa(0x1000), 64, 8);
    let rsp = CommandRing::new(Hpa(0x1000 + cmd.footprint()), 64, 8);
    cmd.init(&mut ram).expect("ring in RAM");
    rsp.init(&mut ram).expect("ring in RAM");
    let mut clock = Clock::new();
    let work = SimDuration::from_ps(cost.workload_increment.as_ps() * workload_increments);

    let one_round = |clock: &mut Clock, ram: &mut GuestMemory, seq: u32| {
        let t0 = clock.now();
        // The responder computes the surrounding workload...
        clock.push_part(CostPart::Other);
        clock.charge(work);
        if mechanism == Mechanism::Polling && placement == Placement::SmtSibling {
            // ...slowed by the polling sibling stealing cycles.
            clock.charge(SimDuration::from_ns_f64(
                work.as_ns() * POLL_SMT_STEAL_RATIO,
            ));
        }
        clock.pop_part(CostPart::Other);
        clock.push_part(CostPart::Channel);
        if mechanism == Mechanism::FunctionCall {
            clock.charge(cost.function_call);
        } else {
            // Requester publishes the command...
            cmd.push(ram, &seq.to_le_bytes()).expect("ring has room");
            clock.charge(cost.cacheline(placement) * 2);
            // ...responder detects it...
            let wake = match mechanism {
                Mechanism::Mwait => cost.monitor_arm + cost.mwait_wake(placement),
                Mechanism::Polling => cost.poll_iter + cost.cacheline(placement),
                Mechanism::Mutex => {
                    if work < cost.mutex_spin_grace {
                        cost.mutex_spin_grace + cost.cacheline(placement)
                    } else {
                        cost.mutex_wake + cost.cacheline(placement)
                    }
                }
                Mechanism::FunctionCall => unreachable!(),
            };
            clock.charge(wake);
            let got = cmd.pop(ram).expect("ring in RAM").expect("command present");
            assert_eq!(got, seq.to_le_bytes());
            // ...and answers; the requester wakes the same way.
            rsp.push(ram, &seq.to_le_bytes()).expect("ring has room");
            clock.charge(cost.cacheline(placement) * 2);
            clock.charge(wake);
            let back = rsp
                .pop(ram)
                .expect("ring in RAM")
                .expect("response present");
            assert_eq!(back, seq.to_le_bytes());
        }
        clock.pop_part(CostPart::Channel);
        clock.now().since(t0).as_ns()
    };

    let mut conv = Convergence::new(0.01, 8, 4096);
    let mut seq = 0u32;
    conv.run(|| {
        seq = seq.wrapping_add(1);
        one_round(&mut clock, &mut ram, seq)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(m: Mechanism, p: Placement, w: u64) -> ChannelCell {
        channel_cell(&CostModel::default(), m, p, w)
    }

    #[test]
    fn polling_has_lowest_latency_for_small_workloads() {
        let p = Placement::SmtSibling;
        let poll = cell(Mechanism::Polling, p, 0);
        let mwait = cell(Mechanism::Mwait, p, 0);
        let mutex = cell(Mechanism::Mutex, p, 0);
        assert!(poll.latency_ns < mwait.latency_ns);
        assert!(poll.latency_ns < mutex.latency_ns);
    }

    #[test]
    fn polling_overhead_grows_with_workload_on_smt() {
        // "overheads increase with the workload in SMT because the waiting
        // thread consumes execution cycles from the computing thread".
        let small = cell(Mechanism::Polling, Placement::SmtSibling, 64);
        let large = cell(Mechanism::Polling, Placement::SmtSibling, 65_536);
        let mwait_large = cell(Mechanism::Mwait, Placement::SmtSibling, 65_536);
        let overhead_small = small.round_ns - small.workload_increments as f64 * 0.4;
        let overhead_large = large.round_ns - large.workload_increments as f64 * 0.4;
        assert!(overhead_large > overhead_small * 10.0);
        // At large workloads mwait's total round beats polling's.
        assert!(mwait_large.round_ns < large.round_ns);
    }

    #[test]
    fn cross_numa_is_order_of_magnitude_worse() {
        let smt = cell(Mechanism::Mwait, Placement::SmtSibling, 0);
        let numa = cell(Mechanism::Mwait, Placement::CrossNode, 0);
        assert!(numa.latency_ns > smt.latency_ns * 5.0, "{numa:?}");
    }

    #[test]
    fn mutex_beats_mwait_slightly_at_small_sizes_only() {
        // "mwait ... has slightly longer delays with small workload sizes
        // (mutex actively polls for a brief time first)" and "mwait is
        // slightly better than mutex in large workload sizes".
        let p = Placement::SmtSibling;
        let mutex_small = cell(Mechanism::Mutex, p, 0);
        let mwait_small = cell(Mechanism::Mwait, p, 0);
        assert!(mutex_small.latency_ns < mwait_small.latency_ns);
        let mutex_large = cell(Mechanism::Mutex, p, 65_536);
        let mwait_large = cell(Mechanism::Mwait, p, 65_536);
        assert!(mwait_large.round_ns < mutex_large.round_ns);
    }

    #[test]
    fn study_covers_full_grid() {
        let cells = channel_study(&CostModel::default(), &default_workloads());
        // 6 sizes x (3 placements x 3 mechanisms + 1 function call).
        assert_eq!(cells.len(), 6 * (3 * 3 + 1));
    }

    #[test]
    fn simulation_agrees_with_the_closed_form() {
        // The simulated ping-pong pays the closed form's one-way latency
        // twice plus four cache-line transfers for the two ring payloads.
        let cost = CostModel::default();
        for &w in &[0u64, 4096, 65_536] {
            for p in Placement::ALL_REMOTE {
                for m in [Mechanism::Mwait, Mechanism::Polling, Mechanism::Mutex] {
                    let analytic = channel_cell(&cost, m, p, w);
                    let simulated = simulate_channel_round_ns(&cost, m, p, w);
                    let expected =
                        analytic.round_ns + analytic.latency_ns + 4.0 * cost.cacheline(p).as_ns();
                    assert!(
                        (simulated - expected).abs() < 1.0,
                        "{m:?} {p} w={w}: sim {simulated:.0} vs expected {expected:.0}"
                    );
                }
            }
        }
    }

    #[test]
    fn simulated_rounds_converge_deterministically() {
        let cost = CostModel::default();
        let a = simulate_channel_round_ns(&cost, Mechanism::Mwait, Placement::SmtSibling, 64);
        let b = simulate_channel_round_ns(&cost, Mechanism::Mwait, Placement::SmtSibling, 64);
        assert_eq!(a, b);
        assert!(a > 1_000.0, "{a}");
    }

    #[test]
    fn smt_mwait_is_the_compromise_the_paper_picks() {
        // Low latency AND no worker slowdown: among mechanisms with zero
        // steal at SMT placement and large workloads, mwait has the lowest
        // latency besides the function call.
        let w = 16_384;
        let mwait = cell(Mechanism::Mwait, Placement::SmtSibling, w);
        let mutex = cell(Mechanism::Mutex, Placement::SmtSibling, w);
        let poll = cell(Mechanism::Polling, Placement::SmtSibling, w);
        assert!(mwait.round_ns <= mutex.round_ns);
        assert!(mwait.round_ns <= poll.round_ns);
    }
}

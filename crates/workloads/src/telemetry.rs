//! Telemetry runs: serving workloads with the windowed time-series
//! sampler and the flight recorder armed.
//!
//! The runner is the chaos harness with the full observability stack on:
//! causal graph (the flight buffer), timeline sampler at a configurable
//! simulated-time cadence, and the armed flight recorder. Everything the
//! run returns — the serving point, the columnar timeline, the crash
//! dump — is a pure function of `(mode, n_vcpus, rate, requests, seed,
//! fault plan, cadence)`, so timeline reports merge byte-identically
//! across sweep workers exactly like run reports do.

use svt_core::{smp_machine, SwitchMode};
use svt_hv::GuestProgram;
use svt_obs::Json;
use svt_sim::{FaultPlan, SimDuration, SimTime};

use crate::harness::attach_loadgen_for_seeded;
use crate::kvstore::{EtcSource, KvService};
use crate::loadgen::ArrivalMode;
use crate::server::{RrServer, ServerConfig};
use crate::smp::SmpPoint;

/// Knobs of a telemetry run.
#[derive(Debug, Clone)]
pub struct TelemetryOpts {
    /// Timeline window length in simulated time.
    pub cadence: SimDuration,
    /// Per-vCPU causal-tail length in flight dumps.
    pub flight_k: usize,
    /// Trip the flight recorder unconditionally at end of run, capturing
    /// a healthy tail even when nothing went wrong.
    pub dump_on_exit: bool,
}

impl Default for TelemetryOpts {
    fn default() -> Self {
        TelemetryOpts {
            cadence: svt_obs::DEFAULT_TIMELINE_CADENCE,
            flight_k: svt_obs::DEFAULT_FLIGHT_K,
            dump_on_exit: false,
        }
    }
}

/// Everything one telemetry run reports.
#[derive(Debug, Clone)]
pub struct TelemetryPoint {
    /// The serving-side result, as in plain SMP runs.
    pub point: SmpPoint,
    /// Simulated traps served (the self-benchmark's unit of work).
    pub traps: u64,
    /// Windows the timeline emitted.
    pub windows: usize,
    /// The columnar timeline export.
    pub timeline: Json,
    /// The latest flight-recorder dump, if any trip happened.
    pub flight: Option<Json>,
    /// Flight-recorder trips over the run.
    pub flight_trips: u64,
    /// Causal watchdog violations (zero on a healthy run).
    pub watchdog_violations: u64,
    /// Faults the armed plan injected.
    pub total_injected: u64,
    /// Traps served through the classic world-switch fallback.
    pub fallback_traps: u64,
}

/// Sharded memcached under per-vCPU open-loop ETC load with the timeline
/// sampler and flight recorder armed and `plan` installed. Identical
/// load and machine as the chaos runner; only observability differs.
///
/// # Panics
///
/// Panics if `n_vcpus` is zero or exceeds the machine's physical cores,
/// or if no lane completes any request.
pub fn memcached_telemetry(
    mode: SwitchMode,
    n_vcpus: usize,
    rate_qps: f64,
    requests: u64,
    plan: FaultPlan,
    opts: &TelemetryOpts,
) -> TelemetryPoint {
    let mean = SimDuration::from_ns_f64(1e9 / rate_qps);
    let mut m = smp_machine(mode, n_vcpus);
    m.faults = plan;
    m.obs.causal.enable();
    m.obs.timeline.enable_with(opts.cadence);
    m.obs.flight.enable_with(opts.flight_k);
    let cost = m.cost.clone();
    let mut stats = Vec::with_capacity(n_vcpus);
    let mut servers: Vec<RrServer> = Vec::with_capacity(n_vcpus);
    for v in 0..n_vcpus {
        let source = Box::new(EtcSource::new(100_000));
        stats.push(attach_loadgen_for_seeded(
            &mut m,
            v,
            ArrivalMode::OpenLoop {
                mean_interarrival: mean,
            },
            requests,
            source,
            crate::harness::DEFAULT_LANE_SEED,
        ));
        let mut cfg = ServerConfig::rr_on_lane(&cost, u64::MAX, v);
        cfg.timer_rearm_every = 4;
        cfg.replenish_every = 2;
        servers.push(RrServer::new(cfg, Box::new(KvService::new(50_000))));
    }
    let horizon = SimTime::ZERO
        + SimDuration::from_ns_f64(requests as f64 * mean.as_ns())
        + SimDuration::from_ms(80);
    let mut progs: Vec<&mut dyn GuestProgram> = servers
        .iter_mut()
        .map(|s| s as &mut dyn GuestProgram)
        .collect();
    m.run_smp(&mut progs, horizon)
        .expect("telemetry run completes");
    if opts.dump_on_exit {
        let now = (0..n_vcpus)
            .map(|i| m.local_now(i))
            .max()
            .unwrap_or(SimTime::ZERO);
        m.obs.flight_trip("dump_on_exit", now);
    }
    let point = crate::smp::collect(n_vcpus, &stats);
    TelemetryPoint {
        point,
        traps: m.obs.metrics.counter_total("vm_exit")
            + m.obs.metrics.counter_total("l0_direct_exit"),
        windows: m.obs.timeline.len(),
        timeline: m.obs.timeline.to_json(),
        flight: m.obs.flight.last_dump().cloned(),
        flight_trips: m.obs.flight.trips(),
        watchdog_violations: m.obs.causal.total_violations(),
        total_injected: m.faults.total_injected(),
        fallback_traps: m.obs.metrics.counter_total("svt_trap_fallback"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_run_matches_plain_smp_and_samples_windows() {
        let plain = crate::smp::memcached_smp(SwitchMode::SwSvt, 2, 2_000.0, 60);
        let t = memcached_telemetry(
            SwitchMode::SwSvt,
            2,
            2_000.0,
            60,
            FaultPlan::none(),
            &TelemetryOpts::default(),
        );
        // Observability never changes simulated behavior.
        assert_eq!(t.point, plain);
        assert!(t.windows > 0, "no timeline windows sampled");
        assert_eq!(
            t.timeline.get("windows").and_then(|w| w.as_i64()),
            Some(t.windows as i64)
        );
        // Fault-free run: no dump unless asked for.
        assert_eq!(t.flight_trips, 0);
        assert!(t.flight.is_none());
        assert_eq!(t.watchdog_violations, 0);
    }

    #[test]
    fn dump_on_exit_captures_a_healthy_tail() {
        let t = memcached_telemetry(
            SwitchMode::SwSvt,
            1,
            2_000.0,
            40,
            FaultPlan::none(),
            &TelemetryOpts {
                dump_on_exit: true,
                ..TelemetryOpts::default()
            },
        );
        assert_eq!(t.flight_trips, 1);
        let dump = t.flight.expect("dump-on-exit produced a dump");
        assert_eq!(dump.get("reason").unwrap().as_str(), Some("dump_on_exit"));
        let vcpus = dump.get("vcpus").unwrap().as_arr().unwrap();
        assert!(!vcpus.is_empty());
        assert!(!vcpus[0].get("events").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn forced_fallback_trips_the_recorder_with_tails() {
        // The chaos smoke's committed operating point: rate 0.05 at this
        // seed drives the policy into FallenBack.
        let t = memcached_telemetry(
            SwitchMode::SwSvt,
            2,
            2_000.0,
            60,
            FaultPlan::uniform(0xC4A0_5EED, 0.05),
            &TelemetryOpts::default(),
        );
        assert!(t.total_injected > 0);
        assert!(t.flight_trips > 0, "no forced-fallback trip");
        let dump = t.flight.expect("trip produced a dump");
        assert_eq!(
            dump.get("reason").unwrap().as_str(),
            Some("forced_fallback")
        );
        let k = dump.get("k").unwrap().as_i64().unwrap() as usize;
        let vcpus = dump.get("vcpus").unwrap().as_arr().unwrap();
        let mut any_events = false;
        for lane in vcpus {
            let events = lane.get("events").unwrap().as_arr().unwrap();
            assert!(events.len() <= k);
            any_events |= !events.is_empty();
        }
        assert!(any_events, "dump carries no causal tail");
    }

    #[test]
    fn identical_configs_produce_identical_timelines() {
        let run = || {
            memcached_telemetry(
                SwitchMode::SwSvt,
                2,
                2_000.0,
                60,
                FaultPlan::uniform(7, 0.05),
                &TelemetryOpts::default(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.timeline.pretty(), b.timeline.pretty());
        assert_eq!(a.flight.map(|j| j.pretty()), b.flight.map(|j| j.pretty()));
    }
}

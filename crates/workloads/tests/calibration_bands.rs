//! Regression guards on the Fig. 7 calibration: baseline absolutes stay
//! in the band recorded in EXPERIMENTS.md, and the emergent SVt factors
//! keep their shape. Counts are kept small; the bands are wide enough for
//! the sampling difference.

use svt_core::SwitchMode;
use svt_workloads::{disk_bandwidth_kb_s, disk_latency_us, net_rr_latency_us, net_stream_mbps};

#[test]
fn net_rr_baseline_band() {
    let us = net_rr_latency_us(SwitchMode::Baseline, 60);
    assert!((90.0..140.0).contains(&us), "net RR baseline {us}us");
}

#[test]
fn net_rr_sw_svt_factor_matches_paper() {
    let b = net_rr_latency_us(SwitchMode::Baseline, 60);
    let s = net_rr_latency_us(SwitchMode::SwSvt, 60);
    let f = b / s;
    // Paper: 1.10x.
    assert!((1.05..1.18).contains(&f), "SW factor {f}");
}

#[test]
fn net_rr_hw_svt_factor_band() {
    let b = net_rr_latency_us(SwitchMode::Baseline, 60);
    let h = net_rr_latency_us(SwitchMode::HwSvt, 60);
    let f = b / h;
    // Paper projects 2.38x; our mechanical elision yields ~1.6x
    // (EXPERIMENTS.md discusses the gap).
    assert!((1.4..2.4).contains(&f), "HW factor {f}");
}

#[test]
fn stream_bandwidth_band_and_saturation() {
    let b = net_stream_mbps(SwitchMode::Baseline, 150);
    assert!((4_000.0..9_500.0).contains(&b), "STREAM baseline {b}");
    let h = net_stream_mbps(SwitchMode::HwSvt, 150);
    // Line-rate-bound: HW SVt helps only a little (paper 1.12x).
    let f = h / b;
    assert!((1.0..1.35).contains(&f), "STREAM HW factor {f}");
    assert!(h <= 10_000.0, "never above line rate");
}

#[test]
fn disk_latency_bands() {
    let rd = disk_latency_us(SwitchMode::Baseline, false, 40);
    let wr = disk_latency_us(SwitchMode::Baseline, true, 40);
    assert!((50.0..90.0).contains(&rd), "randrd {rd}");
    assert!((80.0..130.0).contains(&wr), "randwr {wr}");
    // The paper's write/read asymmetry (179 vs 126 = 1.42x): ours ~1.5x.
    let asym = wr / rd;
    assert!((1.2..1.8).contains(&asym), "asymmetry {asym}");
}

#[test]
fn disk_bandwidth_close_to_paper() {
    let bw = disk_bandwidth_kb_s(SwitchMode::Baseline, false, 60);
    // Paper: 87,136 KB/s; EXPERIMENTS.md records -9%.
    assert!((65_000.0..100_000.0).contains(&bw), "randrd bw {bw}");
}

#[test]
fn disk_hw_svt_factor_matches_paper_shape() {
    let b = disk_latency_us(SwitchMode::Baseline, false, 40);
    let h = disk_latency_us(SwitchMode::HwSvt, false, 40);
    let f = b / h;
    // Paper: 2.18x; ours ~1.98x.
    assert!((1.7..2.3).contains(&f), "disk HW factor {f}");
}

//! Behavioral tests of the workload guest programs: stream sender, disk
//! bench, video player and the request/response server's I/O plan.

use svt_core::{nested_machine, SwitchMode};
use svt_hv::Machine;
use svt_sim::SimDuration;
use svt_virtio::{NetConfig, VirtioNet, Virtqueue};
use svt_workloads::*;

fn stream_machine(mode: SwitchMode, coalesce: u32) -> Machine {
    let mut m = nested_machine(mode);
    let cost = m.cost.clone();
    let net = VirtioNet::new(
        NetConfig::stream(&cost, coalesce),
        Virtqueue::new(layout::TX_QUEUE, QUEUE_SIZE),
        Virtqueue::new(layout::RX_QUEUE, QUEUE_SIZE),
    );
    m.add_device(Box::new(net));
    m
}

#[test]
fn stream_sender_accounts_every_packet() {
    let mut m = stream_machine(SwitchMode::Baseline, 4);
    let cost = m.cost.clone();
    let mut sender = StreamSender::new(&cost, 16_384, 8, 100);
    m.run(&mut sender).unwrap();
    assert_eq!(sender.acked(), 100);
    let mbps = sender.throughput_mbps();
    assert!(mbps > 1_000.0 && mbps <= 10_000.0, "{mbps}");
}

#[test]
fn stream_partial_final_batch_is_flushed() {
    // 101 % 4 != 0: the delayed-ACK flush must complete the run.
    let mut m = stream_machine(SwitchMode::Baseline, 4);
    let cost = m.cost.clone();
    let mut sender = StreamSender::new(&cost, 16_384, 8, 101);
    m.run(&mut sender).expect("no ACK starvation");
    assert_eq!(sender.acked(), 101);
}

#[test]
fn stream_larger_window_does_not_reduce_throughput() {
    let run = |window| {
        let mut m = stream_machine(SwitchMode::Baseline, 4);
        let cost = m.cost.clone();
        let mut sender = StreamSender::new(&cost, 16_384, window, 120);
        m.run(&mut sender).unwrap();
        sender.throughput_mbps()
    };
    let w2 = run(2);
    let w12 = run(12);
    assert!(w12 >= w2 * 0.95, "window 2: {w2}, window 12: {w12}");
}

#[test]
fn disk_bench_latency_mode_is_synchronous() {
    let mut m = nested_machine(SwitchMode::Baseline);
    attach_blk(&mut m);
    let cost = m.cost.clone();
    let mut bench = DiskBench::new(&cost, DiskMode::Latency, false, 512, 20);
    m.run(&mut bench).unwrap();
    assert_eq!(bench.completed(), 20);
    assert_eq!(bench.latency().len(), 20);
    // QD1: every sample is a full round trip; distribution is tight.
    let mean = bench.latency().mean();
    let p99 = bench.latency().p99();
    assert!(p99 < mean * 1.5, "mean {mean} p99 {p99}");
}

#[test]
fn disk_bandwidth_scales_with_queue_depth() {
    let run = |qd| {
        let mut m = nested_machine(SwitchMode::Baseline);
        attach_blk(&mut m);
        let cost = m.cost.clone();
        let mut bench = DiskBench::new(&cost, DiskMode::Bandwidth { qd }, false, 4096, 60);
        m.run(&mut bench).unwrap();
        bench.bandwidth_kb_s()
    };
    let qd1 = run(1);
    let qd4 = run(4);
    assert!(qd4 > qd1, "qd1 {qd1} qd4 {qd4}");
}

#[test]
fn video_player_presents_every_frame() {
    let mut m = nested_machine(SwitchMode::Baseline);
    attach_blk(&mut m);
    let mut cfg = VideoConfig::isca19(60);
    cfg.duration = SimDuration::from_secs(5);
    let mut p = VideoPlayer::new(cfg, 3);
    m.run(&mut p).unwrap();
    assert_eq!(p.frames_played(), 60 * 5);
    assert_eq!(p.frames_dropped(), 0);
    // Frames were paced by the timer, not free-running: at least 5 real
    // seconds elapsed on the simulated clock.
    assert!(m.clock.now().as_secs() >= 5.0);
}

#[test]
fn video_player_reads_file_chunks_from_disk() {
    let mut m = nested_machine(SwitchMode::Baseline);
    attach_blk(&mut m);
    let mut cfg = VideoConfig::isca19(24);
    cfg.duration = SimDuration::from_secs(3);
    let mut p = VideoPlayer::new(cfg, 4);
    m.run(&mut p).unwrap();
    // ~6 chunks in 3s at 500ms cadence, tens of reads each.
    assert!(m.clock.tag_time("EPT_MISCONFIG").as_ns() > 0.0);
    assert!(m.clock.counter("irq_delivered") > 100);
}

#[test]
fn server_wal_blocks_reply_until_persistence() {
    // A service demanding WAL persistence must not reply before the block
    // write completes: with media+backend time W, per-request latency is
    // at least W larger than the no-WAL service.
    #[derive(Debug)]
    struct WalEcho;
    impl ServiceModel for WalEcho {
        fn serve(&mut self, _req: &ParsedRequest, _mem: &mut svt_mem::GuestMemory) -> ServeOutput {
            ServeOutput {
                compute: SimDuration::from_us(1),
                reply_len: 8,
                wal_bytes: 4096,
                disk_reads: 0,
            }
        }
    }
    let cost = svt_sim::CostModel::default();
    let run = |wal: bool| {
        let source = Box::new(FixedSource {
            request: Request {
                op: 0,
                key: 1,
                vsize: 1,
            },
        });
        let (mut m, stats) = rr_machine(SwitchMode::Baseline, rr_arrival(&cost), 10, source);
        attach_blk(&mut m);
        let mut cfg = ServerConfig::rr_defaults(&cost, 10);
        cfg.blk_mmio = Some(layout::BLK_MMIO);
        let svc: Box<dyn ServiceModel> = if wal {
            Box::new(WalEcho)
        } else {
            Box::new(EchoService {
                compute: SimDuration::from_us(1),
                reply_len: 8,
            })
        };
        let mut server = RrServer::new(cfg, svc);
        m.run(&mut server).unwrap();
        let s = stats.borrow();
        s.latency.mean()
    };
    let with_wal = run(true);
    let without = run(false);
    assert!(
        with_wal > without + 30_000.0,
        "wal {with_wal} vs plain {without}"
    );
}

#[test]
fn server_disk_reads_are_sequentially_ordered_before_reply() {
    #[derive(Debug)]
    struct ReadyEcho;
    impl ServiceModel for ReadyEcho {
        fn serve(&mut self, _req: &ParsedRequest, _mem: &mut svt_mem::GuestMemory) -> ServeOutput {
            ServeOutput {
                compute: SimDuration::from_us(1),
                reply_len: 8,
                wal_bytes: 128,
                disk_reads: 3,
            }
        }
    }
    let cost = svt_sim::CostModel::default();
    let source = Box::new(FixedSource {
        request: Request {
            op: 0,
            key: 1,
            vsize: 1,
        },
    });
    let (mut m, stats) = rr_machine(SwitchMode::Baseline, rr_arrival(&cost), 5, source);
    attach_blk(&mut m);
    let mut cfg = ServerConfig::rr_defaults(&cost, 5);
    cfg.blk_mmio = Some(layout::BLK_MMIO);
    let mut server = RrServer::new(cfg, Box::new(ReadyEcho));
    m.run(&mut server).unwrap();
    assert_eq!(stats.borrow().completed, 5);
    // 4 block operations per request (3 reads + 1 WAL write), 5 requests.
    assert!(m.clock.counter("irq_delivered") >= 5 * 4);
}

#[test]
fn open_loop_overload_saturates_gracefully() {
    // Offered load far beyond capacity: the server saturates, p99 blows
    // up, but the run completes and throughput plateaus.
    let p = memcached_point(SwitchMode::Baseline, 40_000.0, 400);
    assert!(p.throughput < 20_000.0, "saturation: {}", p.throughput);
    assert!(p.p99_ns > SLA_NS, "overload exceeds SLA");
}

//! Microbench: the disabled divergence-sentinel gate must be a cheap
//! early return.
//!
//! The machine consults the sentinel on every telemetry tick of every
//! trap, sentinel or no sentinel — the disabled probe is an `Option`
//! discriminant test and nothing else. Like the `ObsLevel` gates in
//! `crates/obs/tests/disabled_overhead.rs`, this pins that cost to
//! "one branch" territory with a deliberately generous bound (debug
//! builds, noisy CI hosts): the regression it catches is fingerprint
//! folding or sample allocation leaking in front of the `is_some`
//! check, a 100× blowup, not a 2× one.

use std::hint::black_box;
use std::time::Instant;

use svt::core::{smp_machine, SwitchMode};

/// Generous per-op ceiling, matching the obs disabled-path gates.
const MAX_DISABLED_NS_PER_OP: f64 = 250.0;

const ITERS: u64 = 1_000_000;

#[test]
fn disabled_sentinel_gate_is_an_early_return() {
    let m = smp_machine(SwitchMode::SwSvt, 2);
    assert!(m.sentinel_samples().is_empty());

    // Warm up so cache effects don't bill the measurement.
    for _ in 0..10_000u64 {
        black_box(m.sentinel_samples().len());
    }

    let start = Instant::now();
    for i in 0..ITERS {
        black_box(i);
        // The public probe is the same `Option` discriminant test the
        // run loop's telemetry tick performs when no sentinel is armed.
        black_box(m.sentinel_samples().is_empty());
    }
    let elapsed = start.elapsed();

    let ns_per_op = elapsed.as_nanos() as f64 / ITERS as f64;
    assert!(
        ns_per_op < MAX_DISABLED_NS_PER_OP,
        "disabled sentinel gate costs {ns_per_op:.1} ns/op (bound {MAX_DISABLED_NS_PER_OP} ns) — \
         something heavier than an early return guards the un-sentineled trap path"
    );
}

//! End-to-end observability: the metrics registry, the trap-lifecycle
//! spans and the Chrome trace export, driven through a real nested run.
//!
//! The golden test pins the trace shape for a 3-trap cpuid run: the
//! export must be valid JSON in the Trace Event Format, byte-stable
//! across identical runs, and carry at least the six Algorithm-1
//! lifecycle stages per nested trap.

use svt::core::{nested_machine, SwitchMode};
use svt::hv::{GuestOp, OpLoop};
use svt::obs::{chrome_trace, Json, MetricKey, ObsLevel, Span};
use svt::sim::SimDuration;

/// Runs `traps` nested cpuids with span tracing on and returns the
/// recorded spans plus the first trap's sequence number.
fn traced_cpuid_run(mode: SwitchMode, traps: u64) -> (Vec<Span>, u64) {
    let mut m = nested_machine(mode);
    let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut warm).expect("cpuid never blocks");
    m.obs.spans.enable();
    let first_seq = m.obs.spans.current_trap() + 1;
    let mut prog = OpLoop::new(GuestOp::Cpuid, traps, 0, SimDuration::ZERO);
    m.run(&mut prog).expect("cpuid never blocks");
    (m.obs.spans.to_vec(), first_seq)
}

#[test]
fn every_nested_trap_yields_at_least_six_lifecycle_spans() {
    for mode in [SwitchMode::Baseline, SwitchMode::SwSvt, SwitchMode::HwSvt] {
        let (spans, first_seq) = traced_cpuid_run(mode, 3);
        for seq in first_seq..first_seq + 3 {
            let trap: Vec<&Span> = spans.iter().filter(|s| s.trap_seq == seq).collect();
            assert!(
                trap.len() >= 6,
                "{mode:?} trap {seq}: only {} spans: {:?}",
                trap.len(),
                trap.iter().map(|s| s.name).collect::<Vec<_>>()
            );
            // The whole-trap lifecycle span must enclose every stage.
            let life = trap
                .iter()
                .find(|s| s.name == "nested_trap")
                .unwrap_or_else(|| panic!("{mode:?} trap {seq}: no lifecycle span"));
            for s in &trap {
                assert!(
                    life.begin <= s.begin && s.end <= life.end,
                    "{mode:?} trap {seq}: span {} [{}..{}] escapes lifecycle [{}..{}]",
                    s.name,
                    s.begin,
                    s.end,
                    life.begin,
                    life.end
                );
                assert!(s.begin <= s.end, "{mode:?} {}: negative span", s.name);
            }
        }
    }
}

#[test]
fn baseline_trap_records_the_algorithm1_stages() {
    let (spans, first_seq) = traced_cpuid_run(SwitchMode::Baseline, 1);
    let names: Vec<&str> = spans
        .iter()
        .filter(|s| s.trap_seq == first_seq)
        .map(|s| s.name)
        .collect();
    for stage in [
        "l2_exit",
        "l0_leg_a",
        "forward_transform",
        "l1_handler",
        "l0_entry_finish",
        "l2_resume",
        "nested_trap",
    ] {
        assert!(names.contains(&stage), "missing {stage} in {names:?}");
    }
}

#[test]
fn chrome_trace_of_three_trap_run_is_stable_and_schema_valid() {
    let (spans, _) = traced_cpuid_run(SwitchMode::Baseline, 3);
    let doc = chrome_trace(&spans);
    let text = doc.pretty();

    // Byte-stable: an identical run renders the identical document.
    let (again, _) = traced_cpuid_run(SwitchMode::Baseline, 3);
    assert_eq!(text, chrome_trace(&again).pretty(), "trace is not stable");

    // Valid JSON that round-trips through the parser.
    let parsed = Json::parse(&text).expect("trace is valid JSON");
    assert_eq!(parsed, doc);

    // Trace Event Format schema: a traceEvents array of M/X events with
    // the required fields, one thread-name record per level lane.
    let events = parsed
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    let mut meta = 0;
    let mut complete = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        match ph {
            "M" => {
                meta += 1;
                assert_eq!(ev.get("name").unwrap().as_str(), Some("thread_name"));
            }
            "X" => {
                complete += 1;
                assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
                assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                let args = ev.get("args").expect("args");
                assert!(args.get("trap").is_some());
                assert!(args.get("begin_ps").is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(meta, ObsLevel::ALL.len());
    assert_eq!(complete, spans.len());
    // 3 traps x >= 6 stages each.
    assert!(complete >= 18, "only {complete} complete events");
}

#[test]
fn metrics_registry_counts_match_the_run() {
    let mut m = nested_machine(SwitchMode::Baseline);
    let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut warm).expect("cpuid never blocks");
    m.obs.metrics.clear();
    let mut prog = OpLoop::new(GuestOp::Cpuid, 5, 0, SimDuration::ZERO);
    m.run(&mut prog).expect("cpuid never blocks");
    let key = MetricKey::new("vm_exit")
        .level(ObsLevel::L2)
        .exit("CPUID")
        .reflector(m.reflector_name());
    assert_eq!(m.obs.metrics.counter(key), 5);
    let hist_key = MetricKey::new("trap_latency_ps")
        .level(ObsLevel::L2)
        .exit("CPUID")
        .reflector(m.reflector_name());
    let h = m
        .obs
        .metrics
        .histogram(hist_key)
        .expect("latency histogram recorded");
    assert_eq!(h.count(), 5);
    // One nested cpuid costs ~10.4us; the histogram is in picoseconds.
    let (lo, hi) = h.percentile_bounds(50.0);
    assert!(lo > 5_000_000 && hi < 20_000_000, "p50 in [{lo}, {hi}]");
}

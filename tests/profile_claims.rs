//! The paper's § 6.2/6.3 profiling claims, reproduced from the clock's
//! per-exit-reason attribution.

use svt::core::SwitchMode;
use svt::sim::SimDuration;
use svt::workloads::{
    memcached_point, rr_arrival, rr_machine, EchoService, FixedSource, Request, RrServer,
    ServerConfig,
};

#[test]
fn vmcs_access_share_is_small_with_shadowing() {
    // § 6.2: "of all time spent handling VM traps in L0, only about 4% is
    // spent in the VM trap handlers triggered by VMCS accesses in L1."
    let source = Box::new(FixedSource {
        request: Request {
            op: 0,
            key: 1,
            vsize: 1,
        },
    });
    let cost = svt::sim::CostModel::default();
    let (mut m, _stats) = rr_machine(SwitchMode::Baseline, rr_arrival(&cost), 60, source);
    let mut server = RrServer::new(
        ServerConfig::rr_defaults(&cost, 60),
        Box::new(EchoService {
            compute: SimDuration::from_us(2),
            reply_len: 1,
        }),
    );
    m.run(&mut server).unwrap();
    let vmcs = m.clock.tag_time("VMREAD").as_ns() + m.clock.tag_time("VMWRITE").as_ns();
    let total: f64 = m.clock.tags_by_time().iter().map(|(_, t)| t.as_ns()).sum();
    let share = vmcs / total;
    assert!(share < 0.12, "VMCS-access share {share:.3}");
}

#[test]
fn memcached_l0_time_dominated_by_ept_misconfig() {
    // § 6.3.1: "L0 spends 4.8%-19.3% of the overall time serving
    // EPT_MISCONFIG traps ... and 0.5%-4.6% serving MSR_WRITE."
    let p = memcached_point(SwitchMode::Baseline, 6_000.0, 200);
    assert!(p.throughput > 0.0);
    // Re-run to inspect the clock (memcached_point consumes its machine, so
    // rebuild the scenario with the same parameters).
    let source = Box::new(svt::workloads::EtcSource::new(100_000));
    let cost = svt::sim::CostModel::default();
    let (mut m, _stats) = rr_machine(
        SwitchMode::Baseline,
        svt::workloads::ArrivalMode::OpenLoop {
            mean_interarrival: SimDuration::from_ns_f64(1e9 / 6_000.0),
        },
        200,
        source,
    );
    let mut cfg = ServerConfig::rr_defaults(&cost, 200);
    cfg.timer_rearm_every = 4;
    cfg.replenish_every = 2;
    let mut server = RrServer::new(cfg, Box::new(svt::workloads::KvService::new(50_000)));
    m.run(&mut server).unwrap();

    let total = m.clock.now().since(svt::sim::SimTime::ZERO).as_ns();
    let ept = m.clock.tag_time("EPT_MISCONFIG").as_ns() / total;
    let msr = m.clock.tag_time("MSR_WRITE").as_ns() / total;
    assert!(
        (0.03..0.45).contains(&ept),
        "EPT_MISCONFIG share {ept:.3} (paper: 0.048-0.193)"
    );
    assert!(
        (0.005..0.25).contains(&msr),
        "MSR_WRITE share {msr:.3} (paper: 0.005-0.046)"
    );
    assert!(ept > msr, "EPT_MISCONFIG dominates MSR_WRITE");
}

#[test]
fn sw_svt_blocked_protocol_makes_forward_progress() {
    // § 5.3: an IPI to L1's main vCPU while the SVt-thread holds a command
    // must not deadlock; the SVT_BLOCKED path services it.
    use svt::hv::{GuestOp, Level, Machine, MachineConfig, MachineEvent, OpLoop};
    let cfg = MachineConfig::at_level(Level::L2);
    let reflector = Box::new(svt::core::SwSvtReflector::new());
    let mut m = Machine::with_reflector(cfg, reflector);
    // Arrange IPIs to arrive while traps are being handled.
    for i in 1..=5u64 {
        m.events.schedule(
            svt::sim::SimTime::from_us(30 + i * 9),
            MachineEvent::IpiToL1Main,
        );
    }
    let mut prog = OpLoop::new(GuestOp::Cpuid, 50, 1000, SimDuration::from_ns(10));
    m.run(&mut prog).expect("no deadlock");
    let blocked = m.clock.counter("svt_blocked");
    let direct = m.clock.counter("l1_ipi_direct");
    assert_eq!(
        blocked + direct,
        5,
        "all IPIs serviced ({blocked} blocked, {direct} direct)"
    );
    assert!(blocked >= 1, "at least one IPI hit the SVT_BLOCKED window");
    // L1's APIC saw and completed every IPI.
    assert!(m.l1.apic.is_idle());
}

/// One side of a cross-vCPU IPI ping-pong: send an ICR write to the
/// peer, halt until the peer's IPI arrives, repeat.
struct IpiPingPong {
    peer: u32,
    sends_left: u64,
    expect_recv: u64,
    received: u64,
    awaiting: bool,
    eoi_owed: u64,
}

impl IpiPingPong {
    fn initiator(peer: u32, rounds: u64) -> Self {
        IpiPingPong {
            peer,
            sends_left: rounds,
            expect_recv: rounds,
            received: 0,
            awaiting: false,
            eoi_owed: 0,
        }
    }

    fn responder(peer: u32, rounds: u64) -> Self {
        IpiPingPong {
            awaiting: true,
            ..Self::initiator(peer, rounds)
        }
    }
}

impl svt::hv::GuestProgram for IpiPingPong {
    fn step(&mut self, _ctx: &mut svt::hv::GuestCtx<'_>) -> svt::hv::GuestOp {
        use svt::vmx::{IcrCommand, MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI};
        if self.eoi_owed > 0 {
            self.eoi_owed -= 1;
            return svt::hv::GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if self.sends_left == 0 && self.received == self.expect_recv {
            return svt::hv::GuestOp::Done;
        }
        if self.awaiting {
            return svt::hv::GuestOp::Hlt;
        }
        self.sends_left -= 1;
        self.awaiting = true;
        svt::hv::GuestOp::MsrWrite {
            msr: MSR_X2APIC_ICR,
            value: IcrCommand::fixed(VECTOR_IPI, self.peer).encode(),
        }
    }

    fn interrupt(&mut self, vector: u8, _ctx: &mut svt::hv::GuestCtx<'_>) {
        if vector == svt::vmx::VECTOR_IPI {
            self.received += 1;
            self.awaiting = false;
            self.eoi_owed += 1;
        }
    }

    fn name(&self) -> &'static str {
        "ipi-ping-pong"
    }
}

#[test]
fn svt_blocked_window_is_bounded_under_cross_vcpu_ipi_storm() {
    // § 5.3 on an SMP guest: two vCPUs ping-pong ICR-write IPIs while
    // IPIs for L1's main vCPU land inside the SW-SVt command windows.
    // The run must terminate (no deadlock between the two blocked-
    // protocol instances), no IPI may be lost, and every SVT_BLOCKED
    // service window must stay bounded.
    use svt::core::smp_machine;
    use svt::hv::{GuestProgram, MachineEvent};
    use svt::obs::MetricKey;

    const ROUNDS: u64 = 25;
    let mut m = smp_machine(SwitchMode::SwSvt, 2);
    for i in 1..=8u64 {
        m.events.schedule(
            svt::sim::SimTime::from_us(5 + i * 13),
            MachineEvent::IpiToL1Main,
        );
    }
    // Each of vCPU 0's sends is answered by vCPU 1, so both trap on the
    // ICR write 25 times and both spend most rounds inside the SW-SVt
    // command protocol.
    let mut p0 = IpiPingPong::initiator(1, ROUNDS);
    let mut p1 = IpiPingPong::responder(0, ROUNDS);
    let mut progs: Vec<&mut dyn GuestProgram> = vec![&mut p0, &mut p1];
    m.run_smp(&mut progs, svt::sim::SimTime::MAX)
        .expect("no deadlock under the IPI storm");

    // Nothing on the interconnect was lost: every ICR write reached its
    // target vCPU and woke it.
    assert_eq!(m.obs.metrics.counter_total("ipi_sent"), 2 * ROUNDS);
    assert_eq!(m.obs.metrics.counter_total("ipi_received"), 2 * ROUNDS);
    assert_eq!(p0.received, ROUNDS);
    assert_eq!(p1.received, ROUNDS);
    // Both vCPUs took the storm through their own reflector instance.
    assert!(m.obs.metrics.counter(MetricKey::new("ipi_sent").vcpu(0)) == ROUNDS);
    assert!(m.obs.metrics.counter(MetricKey::new("ipi_sent").vcpu(1)) == ROUNDS);

    // The SVT_BLOCKED path fired and each blocked window stayed short:
    // the main vCPU serviced the IPI and returned to the command wait.
    let blocked = m.obs.metrics.counter_total("svt_blocked");
    assert!(blocked >= 1, "storm never hit the SVT_BLOCKED window");
    let h = m
        .obs
        .metrics
        .histogram(MetricKey::new("svt_blocked_window_ps").reflector("sw-svt"))
        .expect("blocked windows recorded");
    assert_eq!(h.count(), blocked, "every blocked IPI recorded a window");
    assert!(
        h.max() < 20_000_000,
        "blocked window up to {} ps; expected < 20us",
        h.max()
    );
}

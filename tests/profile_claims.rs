//! The paper's § 6.2/6.3 profiling claims, reproduced from the clock's
//! per-exit-reason attribution.

use svt::core::SwitchMode;
use svt::sim::SimDuration;
use svt::workloads::{
    memcached_point, rr_arrival, rr_machine, EchoService, FixedSource, Request, RrServer,
    ServerConfig,
};

#[test]
fn vmcs_access_share_is_small_with_shadowing() {
    // § 6.2: "of all time spent handling VM traps in L0, only about 4% is
    // spent in the VM trap handlers triggered by VMCS accesses in L1."
    let source = Box::new(FixedSource {
        request: Request {
            op: 0,
            key: 1,
            vsize: 1,
        },
    });
    let cost = svt::sim::CostModel::default();
    let (mut m, _stats) = rr_machine(SwitchMode::Baseline, rr_arrival(&cost), 60, source);
    let mut server = RrServer::new(
        ServerConfig::rr_defaults(&cost, 60),
        Box::new(EchoService {
            compute: SimDuration::from_us(2),
            reply_len: 1,
        }),
    );
    m.run(&mut server).unwrap();
    let vmcs = m.clock.tag_time("VMREAD").as_ns() + m.clock.tag_time("VMWRITE").as_ns();
    let total: f64 = m.clock.tags_by_time().iter().map(|(_, t)| t.as_ns()).sum();
    let share = vmcs / total;
    assert!(share < 0.12, "VMCS-access share {share:.3}");
}

#[test]
fn memcached_l0_time_dominated_by_ept_misconfig() {
    // § 6.3.1: "L0 spends 4.8%-19.3% of the overall time serving
    // EPT_MISCONFIG traps ... and 0.5%-4.6% serving MSR_WRITE."
    let p = memcached_point(SwitchMode::Baseline, 6_000.0, 200);
    assert!(p.throughput > 0.0);
    // Re-run to inspect the clock (memcached_point consumes its machine, so
    // rebuild the scenario with the same parameters).
    let source = Box::new(svt::workloads::EtcSource::new(100_000));
    let cost = svt::sim::CostModel::default();
    let (mut m, _stats) = rr_machine(
        SwitchMode::Baseline,
        svt::workloads::ArrivalMode::OpenLoop {
            mean_interarrival: SimDuration::from_ns_f64(1e9 / 6_000.0),
        },
        200,
        source,
    );
    let mut cfg = ServerConfig::rr_defaults(&cost, 200);
    cfg.timer_rearm_every = 4;
    cfg.replenish_every = 2;
    let mut server = RrServer::new(cfg, Box::new(svt::workloads::KvService::new(50_000)));
    m.run(&mut server).unwrap();

    let total = m.clock.now().since(svt::sim::SimTime::ZERO).as_ns();
    let ept = m.clock.tag_time("EPT_MISCONFIG").as_ns() / total;
    let msr = m.clock.tag_time("MSR_WRITE").as_ns() / total;
    assert!(
        (0.03..0.45).contains(&ept),
        "EPT_MISCONFIG share {ept:.3} (paper: 0.048-0.193)"
    );
    assert!(
        (0.005..0.25).contains(&msr),
        "MSR_WRITE share {msr:.3} (paper: 0.005-0.046)"
    );
    assert!(ept > msr, "EPT_MISCONFIG dominates MSR_WRITE");
}

#[test]
fn sw_svt_blocked_protocol_makes_forward_progress() {
    // § 5.3: an IPI to L1's main vCPU while the SVt-thread holds a command
    // must not deadlock; the SVT_BLOCKED path services it.
    use svt::hv::{GuestOp, Level, Machine, MachineConfig, MachineEvent, OpLoop};
    let cfg = MachineConfig::at_level(Level::L2);
    let reflector = Box::new(svt::core::SwSvtReflector::new());
    let mut m = Machine::with_reflector(cfg, reflector);
    // Arrange IPIs to arrive while traps are being handled.
    for i in 1..=5u64 {
        m.events.schedule(
            svt::sim::SimTime::from_us(30 + i * 9),
            MachineEvent::IpiToL1Main,
        );
    }
    let mut prog = OpLoop::new(GuestOp::Cpuid, 50, 1000, SimDuration::from_ns(10));
    m.run(&mut prog).expect("no deadlock");
    let blocked = m.clock.counter("svt_blocked");
    let direct = m.clock.counter("l1_ipi_direct");
    assert_eq!(
        blocked + direct,
        5,
        "all IPIs serviced ({blocked} blocked, {direct} direct)"
    );
    assert!(blocked >= 1, "at least one IPI hit the SVT_BLOCKED window");
    // L1's APIC saw and completed every IPI.
    assert!(m.l1.apic.is_idle());
}

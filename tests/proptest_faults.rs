//! Property tests for the fault-injection subsystem: any random fault
//! plan, over any randomized SMP schedule, on every switch engine, must
//! leave the machine **live** (the run completes), **honest** (no causal
//! watchdog fires), and **transparent** (the guests execute exactly the
//! workload they would have executed fault-free — faults may cost time,
//! never semantics).
//!
//! Randomised inputs are driven by the in-tree deterministic PRNG so the
//! cases are reproducible and the suite has no external dependencies.

use std::cell::Cell;
use std::rc::Rc;

use svt::core::{smp_machine, SwitchMode};
use svt::hv::{GuestCtx, GuestOp, GuestProgram, Machine};
use svt::sim::{DetRng, FaultKind, FaultPlan, SimDuration, SimTime};
use svt::vmx::{IcrCommand, MSR_TSC_DEADLINE, MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI};

/// A deterministic random workload: per request, a short burst of
/// compute / cpuid / vmcall / IPI ops drawn from a lane-keyed PRNG.
/// Interrupt handling (EOI) rides outside the PRNG stream, so the issued
/// op tally is a pure function of (seed, lane) — the equivalence oracle.
struct ChaosGuest {
    rng: DetRng,
    n_vcpus: usize,
    requests_left: u64,
    ops_left: u32,
    pending_eoi: u32,
    tally: [u64; 4], // compute, cpuid, vmcall, ipi
    irqs: u64,
    /// How many lanes have retired all their requests. A vCPU that
    /// retires early would be skipped by the scheduler, turning any IPI
    /// still in flight toward it into a (correctly) watchdogged loss —
    /// so every lane lingers (timer-armed halt, so other lanes still get
    /// scheduled) until all lanes are done, plus a margin covering the
    /// worst in-flight redelivery.
    done_lanes: Rc<Cell<usize>>,
    reported_done: bool,
    margin_left: u32,
    timer_armed: bool,
}

impl ChaosGuest {
    fn new(
        seed: u64,
        lane: usize,
        n_vcpus: usize,
        requests: u64,
        done_lanes: Rc<Cell<usize>>,
    ) -> Self {
        ChaosGuest {
            rng: DetRng::seed(seed ^ (lane as u64).wrapping_mul(0x9e37_79b9)),
            n_vcpus,
            requests_left: requests,
            ops_left: 0,
            pending_eoi: 0,
            tally: [0; 4],
            irqs: 0,
            done_lanes,
            reported_done: false,
            margin_left: 4,
            timer_armed: false,
        }
    }
}

impl GuestProgram for ChaosGuest {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if self.pending_eoi > 0 {
            self.pending_eoi -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if self.ops_left == 0 {
            if self.requests_left == 0 {
                if !self.reported_done {
                    self.reported_done = true;
                    self.done_lanes.set(self.done_lanes.get() + 1);
                }
                let all_done = self.done_lanes.get() >= self.n_vcpus;
                if all_done && self.margin_left == 0 {
                    return GuestOp::Done;
                }
                // Arm a timer and halt; the wakeup re-checks. A
                // busy-compute linger would monopolize the cooperative
                // scheduler and starve the other lanes' events. The
                // deadline must outlast the wrmsr trap itself (tens of
                // microseconds nested) or the timer fires and disarms
                // before the halt, stranding the lane. In-flight IPIs
                // are event-routed while halted, so a coarse period
                // delays nothing but the final Done.
                if self.timer_armed {
                    self.timer_armed = false;
                    return GuestOp::Hlt;
                }
                self.timer_armed = true;
                if all_done {
                    self.margin_left -= 1;
                }
                return GuestOp::MsrWrite {
                    msr: MSR_TSC_DEADLINE,
                    value: (ctx.now + SimDuration::from_us(200)).as_ps(),
                };
            }
            self.requests_left -= 1;
            self.ops_left = 1 + self.rng.below(5) as u32;
        }
        self.ops_left -= 1;
        match self.rng.below(4) {
            0 => {
                self.tally[0] += 1;
                GuestOp::Compute(SimDuration::from_ns(40 + self.rng.below(400)))
            }
            1 => {
                self.tally[1] += 1;
                GuestOp::Cpuid
            }
            2 => {
                self.tally[2] += 1;
                GuestOp::Vmcall(9)
            }
            _ if self.n_vcpus > 1 => {
                let dest = self.rng.below(self.n_vcpus as u64) as u32;
                self.tally[3] += 1;
                GuestOp::MsrWrite {
                    msr: MSR_X2APIC_ICR,
                    value: IcrCommand::fixed(VECTOR_IPI, dest).encode(),
                }
            }
            _ => {
                self.tally[1] += 1;
                GuestOp::Cpuid
            }
        }
    }

    fn interrupt(&mut self, _vector: u8, _ctx: &mut GuestCtx<'_>) {
        self.irqs += 1;
        self.pending_eoi += 1;
    }

    fn name(&self) -> &'static str {
        "chaos-guest"
    }
}

/// Draw a random fault plan: each kind independently armed with a random
/// rate, an occasional budget cap, and a random delay range.
fn random_plan(rng: &mut DetRng) -> FaultPlan {
    let mut plan = FaultPlan::seeded(rng.below(u64::MAX));
    for kind in FaultKind::ALL {
        if rng.chance(0.5) {
            let rate = 0.02 + 0.18 * rng.unit();
            plan = plan.with_rate(kind, rate);
            if rng.chance(0.3) {
                plan = plan.with_budget(kind, rng.range(1, 6));
            }
        }
    }
    if rng.chance(0.5) {
        plan = plan.with_delay(
            SimDuration::from_ns(100 + rng.below(400)),
            SimDuration::from_ns(600 + rng.below(2_000)),
        );
    }
    plan
}

struct RunOutcome {
    tallies: Vec<[u64; 4]>,
    requests_done: bool,
}

fn run_chaos(
    mode: SwitchMode,
    n_vcpus: usize,
    workload_seed: u64,
    requests: u64,
    plan: FaultPlan,
) -> (Machine, RunOutcome) {
    let mut m = smp_machine(mode, n_vcpus);
    m.faults = plan;
    m.obs.causal.enable();
    let done_lanes = Rc::new(Cell::new(0));
    let mut guests: Vec<ChaosGuest> = (0..n_vcpus)
        .map(|v| ChaosGuest::new(workload_seed, v, n_vcpus, requests, done_lanes.clone()))
        .collect();
    {
        let mut progs: Vec<&mut dyn GuestProgram> = guests
            .iter_mut()
            .map(|g| g as &mut dyn GuestProgram)
            .collect();
        m.run_smp(&mut progs, SimTime::MAX)
            .expect("faulted machine stays live");
    }
    let outcome = RunOutcome {
        tallies: guests.iter().map(|g| g.tally).collect(),
        requests_done: guests.iter().all(|g| g.requests_left == 0),
    };
    (m, outcome)
}

/// Liveness + watchdog silence + fault-free equivalence, over random
/// fault plans and random schedules, on all three engines and 1-4 vCPUs.
#[test]
fn random_fault_plans_preserve_liveness_and_guest_semantics() {
    const REQUESTS: u64 = 10;
    let mut meta = DetRng::seed(0xFA17_CA5E);
    let mut total_injected = 0u64;
    for mode in [SwitchMode::Baseline, SwitchMode::SwSvt, SwitchMode::HwSvt] {
        for n_vcpus in 1..=4usize {
            for _case in 0..3 {
                let workload_seed = meta.below(u64::MAX);
                let plan = random_plan(&mut meta);

                let (faulted, got) = run_chaos(mode, n_vcpus, workload_seed, REQUESTS, plan);
                let (_clean, want) =
                    run_chaos(mode, n_vcpus, workload_seed, REQUESTS, FaultPlan::none());

                // Liveness: both runs returned; every request retired.
                assert!(got.requests_done, "faulted run left requests behind");
                assert!(want.requests_done, "clean run left requests behind");

                // Honesty: recovery never confused the causal watchdogs.
                for (name, count) in faulted.obs.causal.violations() {
                    assert_eq!(
                        count, 0,
                        "{name} fired under {mode:?} x{n_vcpus} (seed {workload_seed:#x})"
                    );
                }

                // Transparency: the faulted guests issued exactly the
                // fault-free op stream — same computes, cpuids, vmcalls
                // and IPIs on every lane. Faults cost time, not work.
                assert_eq!(
                    got.tallies, want.tallies,
                    "guest-visible op stream diverged under {mode:?} x{n_vcpus}"
                );

                total_injected += faulted.faults.total_injected();
            }
        }
    }
    // The property is vacuous if the random plans never fired.
    assert!(
        total_injected > 100,
        "random plans injected too few faults ({total_injected}) to exercise recovery"
    );
}

/// Replaying the same fault plan seed over the same schedule reproduces
/// the exact same injection trace — campaign results are replayable.
#[test]
fn identical_fault_seeds_reproduce_identical_runs() {
    let plan = |s| {
        FaultPlan::seeded(s)
            .with_rate(FaultKind::CmdDrop, 0.1)
            .with_rate(FaultKind::DoorbellLost, 0.1)
            .with_rate(FaultKind::IpiDrop, 0.2)
            .with_rate(FaultKind::SiblingDelay, 0.1)
    };
    let (a, _) = run_chaos(SwitchMode::SwSvt, 2, 0xBEEF, 20, plan(7));
    let (b, _) = run_chaos(SwitchMode::SwSvt, 2, 0xBEEF, 20, plan(7));
    assert_eq!(a.faults.injected_counts(), b.faults.injected_counts());
    assert_eq!(a.clock.now(), b.clock.now(), "replay diverged in time");
    for name in ["svt_retransmits", "svt_timeouts", "svt_trap_fallback"] {
        assert_eq!(
            a.obs.metrics.counter_total(name),
            b.obs.metrics.counter_total(name),
            "replay diverged in {name}"
        );
    }
}

/// A plan whose window has already closed behaves exactly like no plan:
/// same finish time, zero injections, zero recovery marks.
#[test]
fn closed_injection_window_is_fault_free() {
    let windowed = FaultPlan::seeded(3)
        .with_rate(FaultKind::CmdDrop, 1.0)
        .with_window(SimTime::from_ps(0), SimTime::from_ps(1));
    let (w, _) = run_chaos(SwitchMode::SwSvt, 2, 0x50DA, 15, windowed);
    let (c, _) = run_chaos(SwitchMode::SwSvt, 2, 0x50DA, 15, FaultPlan::none());
    assert_eq!(w.faults.total_injected(), 0);
    assert_eq!(w.clock.now(), c.clock.now());
    assert_eq!(w.obs.metrics.counter_total("svt_retransmits"), 0);
}

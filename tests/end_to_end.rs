//! End-to-end integration tests spanning the whole workspace: workloads
//! driving real virtqueues over the nested hypervisor under every switch
//! engine, with data integrity checked through each layer.

use svt::core::{nested_machine, SwitchMode};
use svt::hv::{GuestOp, Level, Machine, MachineConfig, OpLoop};
use svt::sim::{CostPart, SimDuration};
use svt::workloads::{
    attach_blk, disk_latency_us, net_rr_latency_us, rr_arrival, rr_machine, EchoService,
    FixedSource, Request, RrServer, ServerConfig,
};

#[test]
fn rr_transaction_flows_through_every_engine() {
    for mode in SwitchMode::ALL {
        let source = Box::new(FixedSource {
            request: Request {
                op: 0,
                key: 7,
                vsize: 1,
            },
        });
        let cost = svt::sim::CostModel::default();
        let (mut m, stats) = rr_machine(mode, rr_arrival(&cost), 30, source);
        let mut server = RrServer::new(
            ServerConfig::rr_defaults(&cost, 30),
            Box::new(EchoService {
                compute: SimDuration::from_us(2),
                reply_len: 1,
            }),
        );
        m.run(&mut server).unwrap_or_else(|e| panic!("{mode}: {e}"));
        let s = stats.borrow();
        assert_eq!(s.completed, 30, "{mode}: all transactions complete");
        assert_eq!(s.dropped, 0, "{mode}: no drops at QD1");
        assert_eq!(server.served(), 30);
        // Latencies are sane and the clock moved.
        assert!(s.latency.mean() > 10_000.0, "{mode}");
    }
}

#[test]
fn fig7_orderings_hold_end_to_end() {
    // HW SVt < SW SVt < baseline on both net and disk latency.
    let rr: Vec<f64> = SwitchMode::ALL
        .iter()
        .map(|&m| net_rr_latency_us(m, 30))
        .collect();
    assert!(rr[2] < rr[1] && rr[1] < rr[0], "net {rr:?}");
    let dk: Vec<f64> = SwitchMode::ALL
        .iter()
        .map(|&m| disk_latency_us(m, false, 30))
        .collect();
    assert!(dk[2] < dk[1] && dk[1] < dk[0], "disk {dk:?}");
}

#[test]
fn disk_data_survives_the_full_stack() {
    // A write benchmark leaves real data on the RAM disk via genuine
    // descriptor chains; reading it back returns the same bytes (checked
    // inside VirtioBlk's unit tests); here we check the nested machine
    // keeps request counts consistent through the interrupt chains.
    let mut m = nested_machine(SwitchMode::Baseline);
    attach_blk(&mut m);
    let cost = m.cost.clone();
    let mut bench = svt::workloads::DiskBench::new(
        &cost,
        svt::workloads::DiskMode::Bandwidth { qd: 4 },
        true,
        4096,
        40,
    );
    m.run(&mut bench).expect("disk run completes");
    assert_eq!(bench.completed(), 40);
    assert!(m.clock.counter("irq_delivered") > 0);
}

#[test]
fn exit_reason_profile_matches_workload_type() {
    // A cpuid loop produces only CPUID-tagged reflection time; an I/O
    // workload produces EPT_MISCONFIG and EXTERNAL_INTERRUPT time.
    let mut m = nested_machine(SwitchMode::Baseline);
    let mut prog = OpLoop::new(GuestOp::Cpuid, 10, 0, SimDuration::ZERO);
    m.run(&mut prog).unwrap();
    assert!(m.clock.tag_time("CPUID").as_ns() > 0.0);
    assert_eq!(m.clock.tag_time("EPT_MISCONFIG").as_ns(), 0.0);

    let source = Box::new(FixedSource {
        request: Request {
            op: 0,
            key: 1,
            vsize: 1,
        },
    });
    let cost = svt::sim::CostModel::default();
    let (mut m, _stats) = rr_machine(SwitchMode::Baseline, rr_arrival(&cost), 10, source);
    let mut server = RrServer::new(
        ServerConfig::rr_defaults(&cost, 10),
        Box::new(EchoService {
            compute: SimDuration::from_us(2),
            reply_len: 1,
        }),
    );
    m.run(&mut server).unwrap();
    assert!(m.clock.tag_time("EPT_MISCONFIG").as_ns() > 0.0);
    assert!(m.clock.tag_time("EXTERNAL_INTERRUPT").as_ns() > 0.0);
    assert!(m.clock.tag_time("MSR_WRITE").as_ns() > 0.0);
}

#[test]
fn attribution_is_exhaustive() {
    // Busy time equals the sum over all parts; nothing is double counted
    // or lost across a full nested RR run.
    let source = Box::new(FixedSource {
        request: Request {
            op: 0,
            key: 1,
            vsize: 1,
        },
    });
    let cost = svt::sim::CostModel::default();
    let (mut m, _stats) = rr_machine(SwitchMode::Baseline, rr_arrival(&cost), 10, source);
    let mut server = RrServer::new(
        ServerConfig::rr_defaults(&cost, 10),
        Box::new(EchoService {
            compute: SimDuration::from_us(2),
            reply_len: 1,
        }),
    );
    let t0 = m.clock.now();
    m.run(&mut server).unwrap();
    let elapsed = m.clock.now().since(t0);
    let snap = m.clock.snapshot();
    let accounted: SimDuration = snap.part_time.values().copied().sum();
    // All simulated time since boot is attributed somewhere (within the
    // pre-measurement boot charge).
    assert!(accounted.as_ns() >= elapsed.as_ns() * 0.99);
}

#[test]
fn single_level_and_native_machines_run_io_free_workloads() {
    for level in [Level::L0, Level::L1] {
        let mut m = Machine::baseline(MachineConfig::at_level(level));
        let mut prog = OpLoop::new(GuestOp::Cpuid, 20, 100, SimDuration::from_ns(1));
        let report = m.run(&mut prog).unwrap();
        assert!(report.steps >= 40);
    }
}

#[test]
fn sw_svt_ring_traffic_is_observable_in_guest_memory() {
    // After an SW-SVt run, the command rings in host RAM have seen real
    // traffic: their head indices moved.
    let mut m = nested_machine(SwitchMode::SwSvt);
    let mut prog = OpLoop::new(GuestOp::Cpuid, 5, 0, SimDuration::ZERO);
    m.run(&mut prog).unwrap();
    let head = m.ram.read_u32(svt::mem::Hpa(0x10_0000)).unwrap();
    assert!(head >= 5, "CMD ring head advanced: {head}");
}

#[test]
fn hw_svt_part_breakdown_shows_the_elision() {
    let mut m = nested_machine(SwitchMode::HwSvt);
    let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut warm).unwrap();
    let base = m.clock.snapshot();
    let mut prog = OpLoop::new(GuestOp::Cpuid, 50, 0, SimDuration::ZERO);
    m.run(&mut prog).unwrap();
    let d = m.clock.since_snapshot(&base);
    // Switches nearly free; transforms unchanged from baseline.
    assert!(d.part_time(CostPart::SwitchL2L0).as_ns() / 50.0 < 100.0);
    assert!(d.part_time(CostPart::SwitchL0L1).as_ns() / 50.0 < 100.0);
    let transform = d.part_time(CostPart::Transform).as_ns() / 50.0;
    assert!((transform - 1290.0).abs() < 20.0, "{transform}");
}

//! SMP machine integration: per-vCPU nested stacks sharing one scheduler.

use svt::core::{smp_machine, SwitchMode};
use svt::hv::{GuestOp, GuestProgram, OpLoop};
use svt::mem::Hpa;
use svt::sim::{SimDuration, SimTime};

/// Base of vCPU 0's SW-SVt ring pair and the per-vCPU stride (one ring
/// pair per 64 KiB ivshmem slice; see `svt_core::sw`).
const RING_BASE: u64 = 0x10_0000;
const RING_STRIDE: u64 = 0x1_0000;

/// Two SW-SVt vCPUs trapping back-to-back must not corrupt each other's
/// command rings. Each vCPU's reflector owns a private ring pair in a
/// disjoint ivshmem slice; a shared or clobbered ring would trip the
/// protocol's command-type checks (failing the run) or skew the per-lane
/// push counts checked below.
#[test]
fn per_vcpu_sw_svt_rings_do_not_interfere() {
    const TRAPS: u64 = 40;
    let mut m = smp_machine(SwitchMode::SwSvt, 2);
    // Different surrounding work per vCPU so their traps interleave
    // rather than proceeding in lockstep.
    let mut p0 = OpLoop::new(GuestOp::Cpuid, TRAPS, 120, SimDuration::from_ns(10));
    let mut p1 = OpLoop::new(GuestOp::Cpuid, TRAPS, 77, SimDuration::from_ns(10));
    let mut progs: Vec<&mut dyn GuestProgram> = vec![&mut p0, &mut p1];
    m.run_smp(&mut progs, SimTime::MAX)
        .expect("both vCPUs complete their trap loops");

    // Every trap crossed the ring protocol (trap command + resume
    // command), on both lanes.
    assert_eq!(
        m.obs.metrics.counter_total("svt_commands"),
        2 * 2 * TRAPS,
        "each of the two vCPUs' {TRAPS} traps costs one trap + one resume command"
    );

    // Both ring pairs live in guest memory at their own slice, and each
    // saw exactly the same protocol traffic: head == tail (quiescent, no
    // torn command left behind) and identical push counts per lane.
    let mut heads = Vec::new();
    for vcpu in 0..2u64 {
        let base = RING_BASE + vcpu * RING_STRIDE;
        let head = m.ram.read_u32(Hpa(base)).unwrap();
        let tail = m.ram.read_u32(Hpa(base + 64)).unwrap();
        assert_eq!(head, tail, "vCPU {vcpu}: command left in flight");
        assert!(head > 0, "vCPU {vcpu}: ring never used");
        heads.push(head);
    }
    assert_eq!(
        heads[0], heads[1],
        "symmetric trap loops must drive symmetric ring traffic"
    );
}

/// A single-vCPU machine built through the SMP constructor behaves
/// exactly like the historical single-vCPU machine: same ring base, same
/// trap cost.
#[test]
fn one_vcpu_smp_machine_is_the_single_vcpu_machine() {
    let mut smp = smp_machine(SwitchMode::SwSvt, 1);
    let mut p = OpLoop::new(GuestOp::Cpuid, 10, 0, SimDuration::ZERO);
    smp.run(&mut p).unwrap();
    let smp_end = smp.clock.now();

    let mut single = svt::core::nested_machine(SwitchMode::SwSvt);
    let mut p = OpLoop::new(GuestOp::Cpuid, 10, 0, SimDuration::ZERO);
    single.run(&mut p).unwrap();
    assert_eq!(smp_end, single.clock.now(), "n=1 must be bit-identical");

    // The lone ring pair sits at the historical ivshmem address.
    assert!(smp.ram.read_u32(Hpa(RING_BASE)).unwrap() > 0);
}

//! Property-based tests on the core data structures and cross-crate
//! invariants.
//!
//! Randomised inputs are driven by the in-tree deterministic PRNG so the
//! cases are reproducible and the suite has no external dependencies.

use svt::cpu::{CtxId, Gpr, SmtCore};
use svt::mem::{CommandRing, Gpa, GuestMemory, Hpa};
use svt::sim::{DetRng, SimDuration, SimTime};
use svt::vmx::{Access, Ept, EptPerms, ExitReason, VmcsField};

/// Guest memory: the last write to any byte wins, regardless of the
/// access pattern around it.
#[test]
fn guest_memory_last_write_wins() {
    let mut rng = DetRng::seed(0x1a57_0001);
    for _ in 0..48 {
        let n_writes = rng.range(1, 24) as usize;
        let writes: Vec<(u64, Vec<u8>)> = (0..n_writes)
            .map(|_| {
                let addr = rng.below(60_000);
                let len = rng.range(1, 64) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                (addr, bytes)
            })
            .collect();
        let mut ram = GuestMemory::new(1 << 16);
        let mut shadow = vec![0u8; 1 << 16];
        for (addr, bytes) in &writes {
            let addr = *addr % ((1 << 16) - bytes.len() as u64);
            ram.write(Hpa(addr), bytes).unwrap();
            shadow[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut all = vec![0u8; 1 << 16];
        ram.read(Hpa(0), &mut all).unwrap();
        assert_eq!(all, shadow);
    }
}

/// Command rings deliver every payload exactly once, in order, for any
/// interleaving of pushes and pops that respects capacity.
#[test]
fn command_ring_is_fifo() {
    let mut rng = DetRng::seed(0x1a57_0002);
    for _ in 0..48 {
        let n_ops = rng.range(1, 200) as usize;
        let ops: Vec<bool> = (0..n_ops).map(|_| rng.chance(0.5)).collect();
        let mut ram = GuestMemory::new(1 << 20);
        let ring = CommandRing::new(Hpa(0x4000), 64, 8);
        ring.init(&mut ram).unwrap();
        let mut pushed = 0u32;
        let mut popped = 0u32;
        for &push in &ops {
            if push && !ring.is_full(&ram).unwrap() {
                ring.push(&mut ram, &pushed.to_le_bytes()).unwrap();
                pushed += 1;
            } else if let Some(payload) = ring.pop(&mut ram).unwrap() {
                assert_eq!(payload, popped.to_le_bytes().to_vec());
                popped += 1;
            }
        }
        while let Some(payload) = ring.pop(&mut ram).unwrap() {
            assert_eq!(payload, popped.to_le_bytes().to_vec());
            popped += 1;
        }
        assert_eq!(pushed, popped);
    }
}

/// EPT composition agrees with step-by-step translation wherever both
/// levels map.
#[test]
fn ept_composition_agrees_with_two_step_translation() {
    let mut rng = DetRng::seed(0x1a57_0003);
    for _ in 0..48 {
        let n_inner = rng.range(1, 32) as usize;
        let inner: Vec<(u64, u64)> = (0..n_inner)
            .map(|_| (rng.below(64), rng.below(64)))
            .collect();
        let n_outer = rng.range(1, 32) as usize;
        let outer: Vec<(u64, u64)> = (0..n_outer)
            .map(|_| (rng.below(64), rng.below(64)))
            .collect();
        let probe: Vec<u64> = (0..16).map(|_| rng.below(64)).collect();
        let mut ept12 = Ept::new();
        for (g, t) in inner {
            ept12.map_page(g, t, EptPerms::RWX);
        }
        let mut ept01 = Ept::new();
        for (g, t) in outer {
            ept01.map_page(g, t, EptPerms::RWX);
        }
        let ept02 = ept12.compose(&ept01);
        for page in probe {
            let addr = Gpa(page * svt::mem::PAGE_SIZE + 5);
            let two_step = ept12
                .translate(addr, Access::Read)
                .ok()
                .and_then(|mid| ept01.translate(mid, Access::Read).ok());
            let composed = ept02.translate(addr, Access::Read).ok();
            assert_eq!(two_step, composed);
        }
    }
}

/// Exit reasons survive the VMCS encode/decode round trip for all
/// field/vector/address operands.
#[test]
fn exit_reason_round_trips() {
    let mut rng = DetRng::seed(0x1a57_0004);
    for _ in 0..256 {
        let vector = rng.below(256) as u8;
        let msr = rng.next_u64() as u32;
        let gpa = rng.below(1 << 40);
        let field_idx = rng.below(VmcsField::COUNT as u64) as usize;
        let nr = rng.next_u64();
        let reasons = [
            ExitReason::ExternalInterrupt { vector },
            ExitReason::MsrWrite { msr },
            ExitReason::MsrRead { msr },
            ExitReason::EptMisconfig { gpa: Gpa(gpa) },
            ExitReason::Vmread {
                field: VmcsField::ALL[field_idx],
            },
            ExitReason::Vmwrite {
                field: VmcsField::ALL[field_idx],
            },
            ExitReason::Vmcall { nr },
        ];
        for r in reasons {
            let (code, qual) = r.encode();
            assert_eq!(ExitReason::decode(code, qual), Some(r));
        }
    }
}

/// SMT contexts never alias: writes through one context's rename map
/// are invisible to every other context.
#[test]
fn smt_contexts_are_isolated() {
    let mut rng = DetRng::seed(0x1a57_0005);
    for _ in 0..48 {
        let n_writes = rng.range(1, 100) as usize;
        let writes: Vec<(u8, usize, u64)> = (0..n_writes)
            .map(|_| (rng.below(3) as u8, rng.below(16) as usize, rng.next_u64()))
            .collect();
        let mut core = SmtCore::new(3);
        let mut shadow = [[0u64; 16]; 3];
        for (ctx, reg, val) in writes {
            core.write_gpr(CtxId(ctx), Gpr::ALL[reg], val);
            shadow[ctx as usize][reg] = val;
        }
        for ctx in 0..3u8 {
            for (i, r) in Gpr::ALL.iter().enumerate() {
                assert_eq!(core.read_gpr(CtxId(ctx), *r), shadow[ctx as usize][i]);
            }
        }
        // The invariant the design rests on: exactly one context runs.
        assert_eq!(core.running_contexts(), 1);
    }
}

/// Simulated time arithmetic is consistent: charging durations in any
/// order reaches the same instant.
#[test]
fn time_accumulation_is_order_independent() {
    let mut rng = DetRng::seed(0x1a57_0006);
    for _ in 0..48 {
        let n = rng.range(1, 64) as usize;
        let ns: Vec<u64> = (0..n).map(|_| rng.range(1, 1_000_000)).collect();
        let total: u64 = ns.iter().sum();
        let mut t1 = SimTime::ZERO;
        for &d in &ns {
            t1 += SimDuration::from_ns(d);
        }
        let mut rev = ns.clone();
        rev.reverse();
        let mut t2 = SimTime::ZERO;
        for &d in &rev {
            t2 += SimDuration::from_ns(d);
        }
        assert_eq!(t1, t2);
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_ns(total));
    }
}

/// Percentiles are monotone in p and bounded by min/max.
#[test]
fn percentiles_are_monotone() {
    let mut rng = DetRng::seed(0x1a57_0007);
    for _ in 0..48 {
        let n = rng.range(1, 256) as usize;
        let samples: Vec<f64> = (0..n).map(|_| rng.unit() * 1e9).collect();
        let p50 = svt::stats::percentile(&samples, 50.0);
        let p90 = svt::stats::percentile(&samples, 90.0);
        let p99 = svt::stats::percentile(&samples, 99.0);
        let max = svt::stats::percentile(&samples, 100.0);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(p50 >= min);
    }
}

/// The 4-sigma filter never removes more than it keeps on unimodal
/// data and never panics on degenerate inputs.
#[test]
fn outlier_filter_is_conservative() {
    let mut rng = DetRng::seed(0x1a57_0008);
    for _ in 0..48 {
        let n = rng.range(1, 256) as usize;
        let samples: Vec<f64> = (0..n).map(|_| rng.unit() * 1e6).collect();
        let kept = svt::stats::filter_outliers(&samples, 4.0);
        assert!(kept.len() * 2 >= samples.len());
        assert!(kept.len() <= samples.len());
    }
}

/// The SMP scheduler is deterministic: the same guest programs on an
/// identically-configured machine reproduce the exact vCPU interleaving,
/// the same final time, the same step count, and a byte-identical
/// metrics report — for any vCPU count, switch mode and program shape.
#[test]
fn smp_schedule_is_deterministic() {
    use svt::core::{smp_machine, SwitchMode};
    use svt::hv::{GuestOp, GuestProgram, OpLoop};
    let mut rng = DetRng::seed(0x1a57_000a);
    for _ in 0..6 {
        let n = rng.range(2, 4) as usize;
        let mode = SwitchMode::ALL[rng.below(SwitchMode::ALL.len() as u64) as usize];
        let iters: Vec<u64> = (0..n).map(|_| rng.range(3, 25)).collect();
        let gaps: Vec<u64> = (0..n).map(|_| rng.range(1, 400)).collect();
        let run = |iters: &[u64], gaps: &[u64]| {
            let mut m = smp_machine(mode, iters.len());
            m.record_schedule = true;
            let mut progs: Vec<OpLoop> = iters
                .iter()
                .zip(gaps)
                .map(|(&i, &g)| OpLoop::new(GuestOp::Cpuid, i, g, SimDuration::from_ns(7)))
                .collect();
            let mut refs: Vec<&mut dyn GuestProgram> = progs
                .iter_mut()
                .map(|p| p as &mut dyn GuestProgram)
                .collect();
            let report = m.run_smp(&mut refs, SimTime::MAX).unwrap();
            (
                m.schedule_trace.clone(),
                report.steps,
                m.clock.now(),
                m.obs.metrics.to_json().to_string(),
            )
        };
        let a = run(&iters, &gaps);
        let b = run(&iters, &gaps);
        assert!(
            a.0.len() >= iters.len(),
            "every vCPU must be scheduled at least once"
        );
        assert_eq!(a.0, b.0, "vCPU interleaving differs between runs");
        assert_eq!(a.1, b.1, "step count differs between runs");
        assert_eq!(a.2, b.2, "final time differs between runs");
        assert_eq!(a.3, b.3, "metrics report differs between runs");
    }
}

/// The Table 1 calibration holds for any surrounding workload size:
/// the virtualization overhead per cpuid is constant, only part 0
/// grows.
#[test]
fn overhead_is_independent_of_surrounding_workload() {
    use svt::core::{nested_machine, SwitchMode};
    use svt::hv::{GuestOp, OpLoop};
    let mut rng = DetRng::seed(0x1a57_0009);
    for _ in 0..16 {
        let work = rng.below(20_000);
        let mut m = nested_machine(SwitchMode::Baseline);
        let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
        m.run(&mut warm).unwrap();
        let base = m.clock.snapshot();
        let mut prog = OpLoop::new(GuestOp::Cpuid, 10, work, SimDuration::from_ns(1));
        m.run(&mut prog).unwrap();
        let d = m.clock.since_snapshot(&base);
        let guest_ns = d.part_time(svt::sim::CostPart::L2Guest).as_ns() / 10.0;
        let overhead_ns = d.busy_time().as_ns() / 10.0 - guest_ns;
        assert!(
            (overhead_ns - 10_350.0).abs() < 110.0,
            "overhead {overhead_ns}"
        );
        assert!(guest_ns >= work as f64);
    }
}

//! Property-based tests on the core data structures and cross-crate
//! invariants.

use proptest::prelude::*;
use svt::cpu::{CtxId, Gpr, SmtCore};
use svt::mem::{CommandRing, Gpa, GuestMemory, Hpa};
use svt::sim::{SimDuration, SimTime};
use svt::vmx::{Access, Ept, EptPerms, ExitReason, VmcsField};

proptest! {
    /// Guest memory: the last write to any byte wins, regardless of the
    /// access pattern around it.
    #[test]
    fn guest_memory_last_write_wins(
        writes in prop::collection::vec((0u64..60_000, prop::collection::vec(any::<u8>(), 1..64)), 1..24)
    ) {
        let mut ram = GuestMemory::new(1 << 16);
        let mut shadow = vec![0u8; 1 << 16];
        for (addr, bytes) in &writes {
            let addr = *addr % ((1 << 16) - bytes.len() as u64);
            ram.write(Hpa(addr), bytes).unwrap();
            shadow[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut all = vec![0u8; 1 << 16];
        ram.read(Hpa(0), &mut all).unwrap();
        prop_assert_eq!(all, shadow);
    }

    /// Command rings deliver every payload exactly once, in order, for any
    /// interleaving of pushes and pops that respects capacity.
    #[test]
    fn command_ring_is_fifo(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut ram = GuestMemory::new(1 << 20);
        let ring = CommandRing::new(Hpa(0x4000), 64, 8);
        ring.init(&mut ram).unwrap();
        let mut pushed = 0u32;
        let mut popped = 0u32;
        for &push in &ops {
            if push && !ring.is_full(&ram).unwrap() {
                ring.push(&mut ram, &pushed.to_le_bytes()).unwrap();
                pushed += 1;
            } else if let Some(payload) = ring.pop(&mut ram).unwrap() {
                prop_assert_eq!(payload, popped.to_le_bytes().to_vec());
                popped += 1;
            }
        }
        while let Some(payload) = ring.pop(&mut ram).unwrap() {
            prop_assert_eq!(payload, popped.to_le_bytes().to_vec());
            popped += 1;
        }
        prop_assert_eq!(pushed, popped);
    }

    /// EPT composition agrees with step-by-step translation wherever both
    /// levels map.
    #[test]
    fn ept_composition_agrees_with_two_step_translation(
        inner in prop::collection::vec((0u64..64, 0u64..64), 1..32),
        outer in prop::collection::vec((0u64..64, 0u64..64), 1..32),
        probe in prop::collection::vec(0u64..64u64, 16),
    ) {
        let mut ept12 = Ept::new();
        for (g, t) in inner {
            ept12.map_page(g, t, EptPerms::RWX);
        }
        let mut ept01 = Ept::new();
        for (g, t) in outer {
            ept01.map_page(g, t, EptPerms::RWX);
        }
        let ept02 = ept12.compose(&ept01);
        for page in probe {
            let addr = Gpa(page * svt::mem::PAGE_SIZE + 5);
            let two_step = ept12
                .translate(addr, Access::Read)
                .ok()
                .and_then(|mid| ept01.translate(mid, Access::Read).ok());
            let composed = ept02.translate(addr, Access::Read).ok();
            prop_assert_eq!(two_step, composed);
        }
    }

    /// Exit reasons survive the VMCS encode/decode round trip for all
    /// field/vector/address operands.
    #[test]
    fn exit_reason_round_trips(
        vector in any::<u8>(),
        msr in any::<u32>(),
        gpa in 0u64..(1 << 40),
        field_idx in 0usize..VmcsField::COUNT,
        nr in any::<u64>(),
    ) {
        let reasons = [
            ExitReason::ExternalInterrupt { vector },
            ExitReason::MsrWrite { msr },
            ExitReason::MsrRead { msr },
            ExitReason::EptMisconfig { gpa: Gpa(gpa) },
            ExitReason::Vmread { field: VmcsField::ALL[field_idx] },
            ExitReason::Vmwrite { field: VmcsField::ALL[field_idx] },
            ExitReason::Vmcall { nr },
        ];
        for r in reasons {
            let (code, qual) = r.encode();
            prop_assert_eq!(ExitReason::decode(code, qual), Some(r));
        }
    }

    /// SMT contexts never alias: writes through one context's rename map
    /// are invisible to every other context.
    #[test]
    fn smt_contexts_are_isolated(
        writes in prop::collection::vec((0u8..3, 0usize..16, any::<u64>()), 1..100)
    ) {
        let mut core = SmtCore::new(3);
        let mut shadow = [[0u64; 16]; 3];
        for (ctx, reg, val) in writes {
            core.write_gpr(CtxId(ctx), Gpr::ALL[reg], val);
            shadow[ctx as usize][reg] = val;
        }
        for ctx in 0..3u8 {
            for (i, r) in Gpr::ALL.iter().enumerate() {
                prop_assert_eq!(core.read_gpr(CtxId(ctx), *r), shadow[ctx as usize][i]);
            }
        }
        // The invariant the design rests on: exactly one context runs.
        prop_assert_eq!(core.running_contexts(), 1);
    }

    /// Simulated time arithmetic is consistent: charging durations in any
    /// order reaches the same instant.
    #[test]
    fn time_accumulation_is_order_independent(ns in prop::collection::vec(1u64..1_000_000, 1..64)) {
        let total: u64 = ns.iter().sum();
        let mut t1 = SimTime::ZERO;
        for &d in &ns {
            t1 += SimDuration::from_ns(d);
        }
        let mut rev = ns.clone();
        rev.reverse();
        let mut t2 = SimTime::ZERO;
        for &d in &rev {
            t2 += SimDuration::from_ns(d);
        }
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(t1, SimTime::ZERO + SimDuration::from_ns(total));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(0.0f64..1e9, 1..256)) {
        let p50 = svt::stats::percentile(&samples, 50.0);
        let p90 = svt::stats::percentile(&samples, 90.0);
        let p99 = svt::stats::percentile(&samples, 99.0);
        let max = svt::stats::percentile(&samples, 100.0);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(p50 >= min);
    }

    /// The 4-sigma filter never removes more than it keeps on unimodal
    /// data and never panics on degenerate inputs.
    #[test]
    fn outlier_filter_is_conservative(samples in prop::collection::vec(0.0f64..1e6, 1..256)) {
        let kept = svt::stats::filter_outliers(&samples, 4.0);
        prop_assert!(kept.len() * 2 >= samples.len());
        prop_assert!(kept.len() <= samples.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Table 1 calibration holds for any surrounding workload size:
    /// the virtualization overhead per cpuid is constant, only part 0
    /// grows.
    #[test]
    fn overhead_is_independent_of_surrounding_workload(work in 0u64..20_000) {
        use svt::core::{nested_machine, SwitchMode};
        use svt::hv::{GuestOp, OpLoop};
        let mut m = nested_machine(SwitchMode::Baseline);
        let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
        m.run(&mut warm).unwrap();
        let base = m.clock.snapshot();
        let mut prog = OpLoop::new(GuestOp::Cpuid, 10, work, SimDuration::from_ns(1));
        m.run(&mut prog).unwrap();
        let d = m.clock.since_snapshot(&base);
        let guest_ns = d.part_time(svt::sim::CostPart::L2Guest).as_ns() / 10.0;
        let overhead_ns = d.busy_time().as_ns() / 10.0 - guest_ns;
        prop_assert!((overhead_ns - 10_350.0).abs() < 110.0, "overhead {overhead_ns}");
        prop_assert!(guest_ns >= work as f64);
    }
}

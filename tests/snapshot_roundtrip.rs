//! Round-trip property tests for the machine snapshot subsystem: a
//! snapshot taken between runs, restored into a fresh machine of the
//! same shape, must be **invisible** — continuing the original machine
//! and continuing the restored copy with identical guests produce the
//! same simulated time, the same guest-visible op streams, the same
//! metrics, the same state fingerprint, and byte-identical *next*
//! snapshots. The property is exercised across every switch engine,
//! 1-4 vCPUs, both ISA backends, and random fault plans mid-flight
//! (the plan's RNG streams are part of the state, so injections resume
//! exactly where they left off).
//!
//! The negative half: corrupted, truncated and shape-mismatched blobs
//! must be rejected with typed [`SnapError`]s — never a panic, never a
//! silent partial restore that passes the fingerprint cross-check.
//!
//! Randomised inputs are driven by the in-tree deterministic PRNG so the
//! cases are reproducible and the suite has no external dependencies.

use std::cell::Cell;
use std::rc::Rc;

use svt::arch::ArchId;
use svt::core::{smp_machine_on, SwitchMode};
use svt::hv::{GuestCtx, GuestOp, GuestProgram, Machine};
use svt::sim::{DetRng, FaultKind, FaultPlan, SimDuration, SimTime, SnapError};
use svt::vmx::{IcrCommand, MSR_TSC_DEADLINE, MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI};

const MODES: [SwitchMode; 3] = [SwitchMode::Baseline, SwitchMode::SwSvt, SwitchMode::HwSvt];

/// A deterministic random workload batch, modelled on the chaos-guest
/// from `proptest_faults.rs`: per request, a short burst of compute /
/// cpuid / vmcall / IPI ops drawn from a lane-keyed PRNG, with the
/// timer-armed linger protocol so no lane retires while an IPI may
/// still be in flight toward it. `allow_ipi` turns the IPI arm off for
/// the riscv backend, whose guests don't issue x2APIC ICR writes.
struct BatchGuest {
    rng: DetRng,
    n_vcpus: usize,
    allow_ipi: bool,
    requests_left: u64,
    ops_left: u32,
    pending_eoi: u32,
    tally: [u64; 4], // compute, cpuid, vmcall, ipi
    done_lanes: Rc<Cell<usize>>,
    reported_done: bool,
    margin_left: u32,
    timer_armed: bool,
}

impl BatchGuest {
    fn new(
        seed: u64,
        lane: usize,
        n_vcpus: usize,
        requests: u64,
        allow_ipi: bool,
        done_lanes: Rc<Cell<usize>>,
    ) -> Self {
        BatchGuest {
            rng: DetRng::seed(seed ^ (lane as u64).wrapping_mul(0x9e37_79b9)),
            n_vcpus,
            allow_ipi,
            requests_left: requests,
            ops_left: 0,
            pending_eoi: 0,
            tally: [0; 4],
            done_lanes,
            reported_done: false,
            margin_left: 4,
            timer_armed: false,
        }
    }
}

impl GuestProgram for BatchGuest {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if self.pending_eoi > 0 {
            self.pending_eoi -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if self.ops_left == 0 {
            if self.requests_left == 0 {
                if !self.reported_done {
                    self.reported_done = true;
                    self.done_lanes.set(self.done_lanes.get() + 1);
                }
                let all_done = self.done_lanes.get() >= self.n_vcpus;
                if all_done && self.margin_left == 0 {
                    return GuestOp::Done;
                }
                if self.timer_armed {
                    self.timer_armed = false;
                    return GuestOp::Hlt;
                }
                self.timer_armed = true;
                if all_done {
                    self.margin_left -= 1;
                }
                return GuestOp::MsrWrite {
                    msr: MSR_TSC_DEADLINE,
                    value: (ctx.now + SimDuration::from_us(200)).as_ps(),
                };
            }
            self.requests_left -= 1;
            self.ops_left = 1 + self.rng.below(5) as u32;
        }
        self.ops_left -= 1;
        match self.rng.below(4) {
            0 => {
                self.tally[0] += 1;
                GuestOp::Compute(SimDuration::from_ns(40 + self.rng.below(400)))
            }
            1 => {
                self.tally[1] += 1;
                GuestOp::Cpuid
            }
            2 => {
                self.tally[2] += 1;
                GuestOp::Vmcall(9)
            }
            _ if self.allow_ipi && self.n_vcpus > 1 => {
                let dest = self.rng.below(self.n_vcpus as u64) as u32;
                self.tally[3] += 1;
                GuestOp::MsrWrite {
                    msr: MSR_X2APIC_ICR,
                    value: IcrCommand::fixed(VECTOR_IPI, dest).encode(),
                }
            }
            _ => {
                self.tally[1] += 1;
                GuestOp::Cpuid
            }
        }
    }

    fn interrupt(&mut self, _vector: u8, _ctx: &mut GuestCtx<'_>) {
        self.pending_eoi += 1;
    }

    fn name(&self) -> &'static str {
        "snapshot-batch-guest"
    }
}

/// Runs one batch of `requests` per lane on `m` and returns the per-lane
/// op tallies. The guests are external to the machine, so "the same
/// remaining programs" means calling this with the same seed on both
/// the continued original and the restored copy.
fn run_batch(
    m: &mut Machine,
    n_vcpus: usize,
    seed: u64,
    requests: u64,
    allow_ipi: bool,
) -> Vec<[u64; 4]> {
    let done_lanes = Rc::new(Cell::new(0));
    let mut guests: Vec<BatchGuest> = (0..n_vcpus)
        .map(|v| BatchGuest::new(seed, v, n_vcpus, requests, allow_ipi, done_lanes.clone()))
        .collect();
    let mut progs: Vec<&mut dyn GuestProgram> = guests
        .iter_mut()
        .map(|g| g as &mut dyn GuestProgram)
        .collect();
    m.run_smp(&mut progs, SimTime::MAX)
        .expect("batch run stays live");
    guests.iter().map(|g| g.tally).collect()
}

/// Draw a random fault plan (same shape as the chaos property tests).
fn random_plan(rng: &mut DetRng) -> FaultPlan {
    let mut plan = FaultPlan::seeded(rng.below(u64::MAX));
    for kind in FaultKind::ALL {
        if rng.chance(0.5) {
            let rate = 0.02 + 0.18 * rng.unit();
            plan = plan.with_rate(kind, rate);
            if rng.chance(0.3) {
                plan = plan.with_budget(kind, rng.range(1, 6));
            }
        }
    }
    if rng.chance(0.5) {
        plan = plan.with_delay(
            SimDuration::from_ns(100 + rng.below(400)),
            SimDuration::from_ns(600 + rng.below(2_000)),
        );
    }
    plan
}

/// One round-trip case: run batch 1, snapshot, restore into a fresh
/// same-shape machine, run an identical batch 2 on both, and require
/// the two futures to be indistinguishable.
fn roundtrip_case(
    arch: ArchId,
    mode: SwitchMode,
    n_vcpus: usize,
    seed1: u64,
    seed2: u64,
    plan: FaultPlan,
    allow_ipi: bool,
) {
    let ctx = format!("{mode:?} x{n_vcpus} on {arch:?} (seeds {seed1:#x}/{seed2:#x})");

    let mut m1 = smp_machine_on(mode, arch, n_vcpus);
    m1.faults = plan;
    run_batch(&mut m1, n_vcpus, seed1, 6, allow_ipi);

    let blob = m1.snapshot();
    let fp_at_snap = m1.state_fingerprint();

    let mut m2 = smp_machine_on(mode, arch, n_vcpus);
    m2.restore(&blob)
        .unwrap_or_else(|e| panic!("restore failed for {ctx}: {e}"));
    assert_eq!(
        m2.state_fingerprint(),
        fp_at_snap,
        "restored fingerprint diverged immediately for {ctx}"
    );
    assert_eq!(
        m2.clock.now(),
        m1.clock.now(),
        "restored clock diverged for {ctx}"
    );

    let a = run_batch(&mut m1, n_vcpus, seed2, 6, allow_ipi);
    let b = run_batch(&mut m2, n_vcpus, seed2, 6, allow_ipi);

    assert_eq!(
        a, b,
        "guest-visible op streams diverged after restore for {ctx}"
    );
    assert_eq!(
        m1.clock.now(),
        m2.clock.now(),
        "simulated time diverged after restore for {ctx}"
    );
    assert_eq!(
        m1.faults.injected_counts(),
        m2.faults.injected_counts(),
        "fault injection trace diverged after restore for {ctx}"
    );
    for name in ["svt_retransmits", "svt_timeouts", "svt_trap_fallback"] {
        assert_eq!(
            m1.obs.metrics.counter_total(name),
            m2.obs.metrics.counter_total(name),
            "metric {name} diverged after restore for {ctx}"
        );
    }
    assert_eq!(
        m1.state_fingerprint(),
        m2.state_fingerprint(),
        "state fingerprint diverged after restore for {ctx}"
    );
    // The strongest form: the *next* snapshot is byte-identical, so a
    // resumed campaign can itself be checkpointed and resumed again
    // without ever forking from the run-through timeline.
    assert_eq!(
        m1.snapshot(),
        m2.snapshot(),
        "next snapshot bytes diverged after restore for {ctx}"
    );
}

/// Restore-then-run equals run-through: every engine, 1-4 vCPUs, random
/// fault plans live across the snapshot point, on the x86 backend.
#[test]
fn snapshot_roundtrip_is_invisible_x86() {
    let mut meta = DetRng::seed(0x5AFE_C0DE);
    for mode in MODES {
        for n_vcpus in 1..=4usize {
            let seed1 = meta.below(u64::MAX);
            let seed2 = meta.below(u64::MAX);
            let plan = random_plan(&mut meta);
            roundtrip_case(ArchId::X86, mode, n_vcpus, seed1, seed2, plan, true);
        }
    }
}

/// The same property on the RISC-V H-extension backend (IPI-free
/// guests: the riscv machine's guests don't issue x2APIC ICR writes).
#[test]
fn snapshot_roundtrip_is_invisible_riscv() {
    let mut meta = DetRng::seed(0x0015_CAFE);
    for mode in MODES {
        for n_vcpus in 1..=4usize {
            let seed1 = meta.below(u64::MAX);
            let seed2 = meta.below(u64::MAX);
            let plan = random_plan(&mut meta);
            roundtrip_case(ArchId::Riscv, mode, n_vcpus, seed1, seed2, plan, false);
        }
    }
}

/// Builds a machine with some history to snapshot in the negative tests.
fn snapshotted_machine() -> (Machine, Vec<u8>) {
    let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
    run_batch(&mut m, 2, 0xBADC_0FFE, 5, true);
    let blob = m.snapshot();
    (m, blob)
}

/// Bit rot anywhere in the payload is caught by the envelope checksum
/// before any state is touched; header damage is caught field by field.
/// Every rejection is a typed error — no panics, no partial acceptance.
#[test]
fn corrupted_snapshots_are_rejected_with_typed_errors() {
    let (_m, blob) = snapshotted_machine();

    // A fresh same-shape machine accepts the pristine blob.
    let mut ok = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
    ok.restore(&blob).expect("pristine blob restores");

    // Flip one bit in the magic.
    let mut bad = blob.clone();
    bad[0] ^= 0x01;
    let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
    assert_eq!(m.restore(&bad), Err(SnapError::BadMagic));

    // Flip one bit in the version field.
    let mut bad = blob.clone();
    bad[8] ^= 0x01;
    let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
    assert!(
        matches!(m.restore(&bad), Err(SnapError::BadVersion { .. })),
        "version damage must be typed"
    );

    // Flip single bits at several payload offsets: always a checksum
    // mismatch, detected before the payload is interpreted.
    for at in [36, blob.len() / 2, blob.len() - 1] {
        let mut bad = blob.clone();
        bad[at] ^= 0x10;
        let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
        assert!(
            matches!(m.restore(&bad), Err(SnapError::ChecksumMismatch { .. })),
            "payload bit-flip at {at} must fail the checksum"
        );
    }

    // Truncation at any point: typed, never a panic or a wild read.
    for cut in [0, 4, 12, 35, 36, blob.len() / 2, blob.len() - 1] {
        let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
        let err = m
            .restore(&blob[..cut])
            .expect_err("truncated blob must be rejected");
        assert!(
            matches!(
                err,
                SnapError::UnexpectedEof { .. } | SnapError::BadMagic | SnapError::BadLength { .. }
            ),
            "truncation at {cut} produced unexpected error {err:?}"
        );
    }
}

/// A snapshot carries the machine's fixed shape; restoring into a
/// machine with a different shape is a typed [`SnapError::ShapeMismatch`].
#[test]
fn shape_mismatched_restore_is_rejected() {
    let (_m, blob) = snapshotted_machine();

    // Wrong vCPU count.
    let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 3);
    assert!(
        matches!(
            m.restore(&blob),
            Err(SnapError::ShapeMismatch {
                what: "vCPU count",
                ..
            })
        ),
        "vCPU-count mismatch must be typed"
    );

    // Wrong ISA backend.
    let mut m = smp_machine_on(SwitchMode::SwSvt, ArchId::Riscv, 2);
    assert!(
        matches!(
            m.restore(&blob),
            Err(SnapError::ShapeMismatch {
                what: "ISA backend",
                ..
            })
        ),
        "ISA-backend mismatch must be typed"
    );

    // Wrong engine: a Baseline machine has no SW-SVt protocol state to
    // restore into. Whatever field trips first, it must be typed.
    let mut m = smp_machine_on(SwitchMode::Baseline, ArchId::X86, 2);
    assert!(
        m.restore(&blob).is_err(),
        "engine mismatch must be rejected"
    );
}

/// The divergence sentinel samples the state fingerprint on a simulated
/// cadence, so its trace is a pure function of the simulation — the
/// sweep worker count must not show through. This is the cross-check a
/// campaign uses to prove `--jobs N` and `--jobs 1` ran the same
/// machines.
#[test]
fn sentinel_samples_agree_at_any_worker_count() {
    let cells: Vec<(SwitchMode, usize)> = MODES
        .iter()
        .flat_map(|&m| (1..=2usize).map(move |n| (m, n)))
        .collect();
    let run_cell = |i: usize| {
        let (mode, n_vcpus) = cells[i];
        let mut m = smp_machine_on(mode, ArchId::X86, n_vcpus);
        m.faults = FaultPlan::seeded(0xD1CE ^ i as u64).with_rate(FaultKind::CmdDrop, 0.05);
        m.enable_sentinel(SimDuration::from_us(50));
        run_batch(&mut m, n_vcpus, 0xAB5E_ED00 + i as u64, 8, n_vcpus > 1);
        m.sentinel_samples().to_vec()
    };
    let serial = svt::sim::sweep(cells.len(), 1, run_cell);
    let fanned = svt::sim::sweep(cells.len(), 4, run_cell);
    assert_eq!(
        serial, fanned,
        "sentinel fingerprint traces diverged between --jobs 1 and --jobs 4"
    );
    assert!(
        serial.iter().all(|s| !s.is_empty()),
        "every cell must produce sentinel samples for the cross-check to mean anything"
    );
}

/// A restored machine resumes the sentinel cadence exactly where the
/// original left off: continuing both produces identical sample tails.
#[test]
fn sentinel_survives_snapshot_restore() {
    let mut m1 = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
    m1.enable_sentinel(SimDuration::from_us(50));
    run_batch(&mut m1, 2, 0x5E17_17E1, 6, true);
    let blob = m1.snapshot();

    let mut m2 = smp_machine_on(SwitchMode::SwSvt, ArchId::X86, 2);
    m2.restore(&blob).expect("restore carries the sentinel");
    assert_eq!(m1.sentinel_samples(), m2.sentinel_samples());

    run_batch(&mut m1, 2, 0x7A11_7A11, 6, true);
    run_batch(&mut m2, 2, 0x7A11_7A11, 6, true);
    assert_eq!(
        m1.sentinel_samples(),
        m2.sentinel_samples(),
        "sentinel trace forked after restore"
    );
    assert!(m1.sentinel_samples().len() > 1);
}

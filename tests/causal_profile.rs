//! The causal event graph end to end: conservation of critical-path
//! weight over randomized SMP schedules, the invariant watchdogs'
//! negative paths, and the profiler's headline claim (SW SVt removes
//! exit/resume time from the request critical path).

use std::cell::RefCell;
use std::rc::Rc;

use svt::core::{smp_machine, SwitchMode};
use svt::hv::{GuestCtx, GuestOp, GuestProgram};
use svt::obs::{fold_paths, CausalGraph, WATCHDOGS};
use svt::sim::{DetRng, SimDuration, SimTime};
use svt::vmx::{IcrCommand, MSR_X2APIC_EOI, MSR_X2APIC_ICR, VECTOR_IPI};
use svt::workloads::memcached_smp_profiled;

/// A guest issuing a randomized mix of trapping and native operations,
/// wrapping them in causal request anchors and remembering each
/// request's true wall-clock window for the conservation check.
struct RandomGuest {
    rng: DetRng,
    lane: u64,
    n_vcpus: usize,
    requests_left: u64,
    seq: u64,
    cur: Option<u64>,
    ops_left: u32,
    pending_eoi: u32,
    /// `(request key, start, end)` as the guest observed them.
    windows: Rc<RefCell<Vec<(u64, SimTime, SimTime)>>>,
    starts: std::collections::HashMap<u64, SimTime>,
}

impl RandomGuest {
    fn new(
        seed: u64,
        lane: usize,
        n_vcpus: usize,
        requests: u64,
        windows: Rc<RefCell<Vec<(u64, SimTime, SimTime)>>>,
    ) -> Self {
        RandomGuest {
            rng: DetRng::seed(seed ^ (lane as u64).wrapping_mul(0x9e37_79b9)),
            lane: lane as u64,
            n_vcpus,
            requests_left: requests,
            seq: 0,
            cur: None,
            ops_left: 0,
            pending_eoi: 0,
            windows,
            starts: std::collections::HashMap::new(),
        }
    }
}

impl GuestProgram for RandomGuest {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestOp {
        if self.pending_eoi > 0 {
            self.pending_eoi -= 1;
            return GuestOp::MsrWrite {
                msr: MSR_X2APIC_EOI,
                value: 0,
            };
        }
        if self.cur.is_none() {
            if self.requests_left == 0 {
                return GuestOp::Done;
            }
            self.requests_left -= 1;
            let key = (self.lane << 32) | self.seq;
            self.seq += 1;
            ctx.obs.causal.request_start(key, ctx.now);
            self.starts.insert(key, ctx.now);
            self.cur = Some(key);
            self.ops_left = 1 + self.rng.below(6) as u32;
        }
        if self.ops_left == 0 {
            let key = self.cur.take().expect("request open");
            ctx.obs.causal.request_end(key, ctx.now);
            let start = self.starts.remove(&key).expect("start recorded");
            self.windows.borrow_mut().push((key, start, ctx.now));
            return self.step(ctx);
        }
        self.ops_left -= 1;
        match self.rng.below(5) {
            0 => GuestOp::Compute(SimDuration::from_ns(50 + self.rng.below(500))),
            1 => GuestOp::Cpuid,
            2 => GuestOp::Vmcall(7),
            3 if self.n_vcpus > 1 => {
                let dest = self.rng.below(self.n_vcpus as u64) as u32;
                GuestOp::MsrWrite {
                    msr: MSR_X2APIC_ICR,
                    value: IcrCommand::fixed(VECTOR_IPI, dest).encode(),
                }
            }
            _ => GuestOp::Cpuid,
        }
    }

    fn interrupt(&mut self, _vector: u8, _ctx: &mut GuestCtx<'_>) {
        self.pending_eoi += 1;
    }

    fn name(&self) -> &'static str {
        "random-guest"
    }
}

/// Conservation: for every completed request, under every engine and
/// every randomized 1–4-vCPU interleaving, the critical path's segment
/// weights sum exactly to the request's end-to-end latency — the walk
/// never loses or double-counts a picosecond, IPI hops included.
#[test]
fn critical_path_weight_is_conserved_over_random_smp_schedules() {
    const REQUESTS: u64 = 8;
    for mode in [SwitchMode::Baseline, SwitchMode::SwSvt, SwitchMode::HwSvt] {
        for n_vcpus in 1..=4usize {
            for seed in [1u64, 42, 1234] {
                let windows = Rc::new(RefCell::new(Vec::new()));
                let mut m = smp_machine(mode, n_vcpus);
                m.obs.causal.enable();
                m.obs.spans.enable();
                let mut guests: Vec<RandomGuest> = (0..n_vcpus)
                    .map(|v| RandomGuest::new(seed, v, n_vcpus, REQUESTS, windows.clone()))
                    .collect();
                let mut progs: Vec<&mut dyn GuestProgram> = guests
                    .iter_mut()
                    .map(|g| g as &mut dyn GuestProgram)
                    .collect();
                m.run_smp(&mut progs, SimTime::MAX)
                    .expect("random guests complete");

                let paths = m.obs.causal.critical_paths();
                let windows = windows.borrow();
                assert_eq!(
                    paths.len(),
                    windows.len(),
                    "{mode:?}/{n_vcpus}v/{seed}: every request yields one path"
                );
                assert_eq!(paths.len(), REQUESTS as usize * n_vcpus);
                for p in &paths {
                    let (_, start, end) = windows
                        .iter()
                        .find(|(k, _, _)| *k == p.request)
                        .expect("request anchored by the guest");
                    let latency = end.since(*start).as_ps();
                    let sum: u64 = p.segments.iter().map(|s| s.ps).sum();
                    assert_eq!(
                        sum, latency,
                        "{mode:?}/{n_vcpus}v/{seed}: req {:#x} segments {} != latency {}",
                        p.request, sum, latency
                    );
                    assert_eq!(p.total_ps, latency);
                    assert!(p.segments.iter().all(|s| s.ps > 0), "zero-weight segment");
                }
                // No protocol invariant may trip under any interleaving.
                // (IPIs routed to an already-finished vCPU are dropped by
                // the scheduler and legitimately count as lost.)
                for w in ["watchdog_ring_deadline", "watchdog_blocked_window"] {
                    assert_eq!(
                        m.obs.causal.violation_count(w),
                        0,
                        "{mode:?}/{n_vcpus}v/{seed}: {w}"
                    );
                }
                assert_eq!(m.obs.causal.violation_count("watchdog_ipi_duplicate"), 0);
                assert_eq!(m.obs.causal.violation_count("watchdog_span_nesting"), 0);
            }
        }
    }
}

/// Negative path: a ring command serviced after the deadline trips the
/// unserviced-ring watchdog exactly once — not once per later event, and
/// not again at finish.
#[test]
fn late_ring_command_trips_deadline_watchdog_exactly_once() {
    let mut g = CausalGraph::new();
    g.enable();
    g.set_ring_deadline(SimDuration::from_us(50));
    let t0 = SimTime::ZERO + SimDuration::from_us(10);
    g.ring_enqueue("svt_cmd_enqueue", 0, t0);
    // Serviced 100us later: past the 50us deadline.
    g.ring_dequeue("svt_cmd_dequeue", 0, t0 + SimDuration::from_us(100));
    // A healthy command afterwards must not re-trip it.
    let t1 = t0 + SimDuration::from_us(200);
    g.ring_enqueue("svt_cmd_enqueue", 0, t1);
    g.ring_dequeue("svt_cmd_dequeue", 0, t1 + SimDuration::from_us(1));
    g.finish(t1 + SimDuration::from_ms(1));
    assert_eq!(g.violation_count("watchdog_ring_deadline"), 1);
    assert_eq!(g.total_violations(), 1);
}

/// Negative path: an IPI delivered twice off one send trips the
/// exactly-once watchdog exactly once (the duplicate), and a send that
/// is never delivered counts as lost at finish.
#[test]
fn double_delivered_ipi_trips_exactly_once_watchdog() {
    let mut g = CausalGraph::new();
    g.enable();
    let t0 = SimTime::ZERO + SimDuration::from_us(1);
    g.set_vcpu(0);
    g.ipi_send(1, t0);
    g.set_vcpu(1);
    g.ipi_recv(t0 + SimDuration::from_ns(500));
    // The same IPI "arrives" again: no matching send remains.
    g.ipi_recv(t0 + SimDuration::from_ns(700));
    g.finish(t0 + SimDuration::from_us(10));
    assert_eq!(g.violation_count("watchdog_ipi_duplicate"), 1);
    assert_eq!(g.violation_count("watchdog_ipi_lost"), 0);

    // Separately: a send with no delivery is lost once its deadline
    // passes at finish.
    let mut g = CausalGraph::new();
    g.enable();
    g.set_ipi_deadline(SimDuration::from_us(50));
    g.ipi_send(1, t0);
    g.finish(t0 + SimDuration::from_ms(1));
    assert_eq!(g.violation_count("watchdog_ipi_lost"), 1);
    assert_eq!(g.violation_count("watchdog_ipi_duplicate"), 0);
}

/// Every watchdog name the graph can report is a registered constant —
/// the metrics harvest and the report rows key off these strings.
#[test]
fn watchdog_names_are_registered() {
    assert_eq!(WATCHDOGS.len(), 5);
    for w in WATCHDOGS {
        assert!(w.starts_with("watchdog_"), "{w}");
    }
}

/// The profiler's headline claim, as the acceptance criterion demands:
/// on the serving workload, SW SVt's critical path spends measurably
/// less in exit/resume phases than the baseline's — the ring protocol
/// replaces the L0<->L1 world switches.
#[test]
fn sw_svt_critical_path_has_less_exit_resume_than_baseline() {
    const EXIT_RESUME: [&str; 4] = ["l2_exit", "l2_resume", "l1_entry", "l1_exit"];
    let (_, base) = memcached_smp_profiled(SwitchMode::Baseline, 2, 2_000.0, 60);
    let (_, sw) = memcached_smp_profiled(SwitchMode::SwSvt, 2, 2_000.0, 60);
    assert!(!base.folded.is_empty() && !sw.folded.is_empty());
    assert!(base.events_dropped == 0 && sw.events_dropped == 0);
    let sum = |prof: &svt::workloads::CausalProfile| -> u64 {
        fold_paths(&prof.paths)
            .iter()
            .filter(|((_, _, phase), _)| EXIT_RESUME.contains(phase))
            .map(|(_, &ps)| ps)
            .sum()
    };
    let (b, s) = (sum(&base), sum(&sw));
    assert!(b > 0, "baseline shows no exit/resume weight");
    assert!(
        (s as f64) < 0.6 * b as f64,
        "sw-svt exit/resume {s} ps not measurably below baseline {b} ps"
    );
    // Both runs are watchdog-clean.
    assert!(base.violations.is_empty(), "{:?}", base.violations);
    assert!(sw.violations.is_empty(), "{:?}", sw.violations);
}

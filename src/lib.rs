//! # SVt: Using SMT to Accelerate Nested Virtualization
//!
//! A full reproduction of Vilanova, Amit & Etsion's ISCA'19 paper as a
//! Rust workspace: a functional machine simulator (SMT core, VT-x-like
//! virtualization hardware, virtio devices), a KVM-like nested hypervisor
//! that runs the paper's Algorithm 1 literally, the SVt hardware/software
//! co-design, and workloads regenerating every table and figure of the
//! evaluation.
//!
//! This facade crate re-exports the workspace's public API; see the
//! individual crates for details:
//!
//! * [`sim`] — simulated time, cost model, events, topology;
//! * [`stats`] — the paper's measurement methodology;
//! * [`mem`] — guest memory and shared-memory rings;
//! * [`cpu`] — the SMT core with SVt extensions;
//! * [`arch`] — the ISA-neutral arch layer: VMCS analogue, exit
//!   reasons, EPT, APIC, and the x86/riscv backend dispatch;
//! * [`vmx`] — the x86 backend facade (re-exports [`arch`]);
//! * [`hv`] — the machine and the baseline nested hypervisor;
//! * [`core`] — the SVt contribution (HW and SW engines);
//! * [`virtio`] — virtqueues, virtio-net, virtio-blk;
//! * [`workloads`] — the evaluation runners;
//! * [`obs`] — metrics, trap-lifecycle spans and run reports.
//!
//! # Examples
//!
//! ```
//! use svt::core::{nested_machine, SwitchMode};
//! use svt::hv::{GuestOp, OpLoop};
//! use svt::sim::SimDuration;
//!
//! // One nested cpuid costs ~10.4us on the baseline (Table 1)...
//! let mut m = nested_machine(SwitchMode::Baseline);
//! let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
//! let t0 = m.clock.now();
//! m.run(&mut prog)?;
//! let baseline = m.clock.now().since(t0);
//!
//! // ...and roughly half that under the paper's hardware design.
//! let mut m = nested_machine(SwitchMode::HwSvt);
//! let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
//! let t0 = m.clock.now();
//! m.run(&mut prog)?;
//! let hw = m.clock.now().since(t0);
//! assert!(baseline.ratio(hw) > 1.8);
//! # Ok::<(), svt::hv::MachineError>(())
//! ```

#![warn(missing_docs)]

pub use svt_arch as arch;
pub use svt_core as core;
pub use svt_cpu as cpu;
pub use svt_hv as hv;
pub use svt_mem as mem;
pub use svt_obs as obs;
pub use svt_sim as sim;
pub use svt_stats as stats;
pub use svt_virtio as virtio;
pub use svt_vmx as vmx;
pub use svt_workloads as workloads;

//! memcached under ETC load (Fig. 8): a short latency-vs-load sweep with
//! the 500 usec SLA crossover.
//!
//! Run with: `cargo run --release --example memcached_sim`

use svt::core::SwitchMode;
use svt::workloads::{fig8_series, SLA_NS};

fn main() {
    let rates = vec![2.0, 4.0, 6.0, 8.0, 10.0];
    println!("memcached + ETC, open-loop load sweep (short run):\n");
    let mut crossovers = Vec::new();
    for mode in [SwitchMode::Baseline, SwitchMode::SwSvt] {
        let series = fig8_series(mode, &rates, 400);
        println!("[{}]", series.name);
        for p in series.points() {
            println!(
                "  {:>5.1} kQPS offered -> {:>6.2} kQPS, avg {:>7.1}us, p99 {:>7.1}us {}",
                p.load / 1000.0,
                p.throughput / 1000.0,
                p.avg_ns / 1000.0,
                p.p99_ns / 1000.0,
                if p.p99_ns <= SLA_NS { "" } else { "(> SLA)" }
            );
        }
        let within = series.max_throughput_within_sla(SLA_NS).unwrap_or(0.0);
        println!(
            "  max throughput within 500us SLA: {:.2} kQPS\n",
            within / 1000.0
        );
        crossovers.push(within);
    }
    println!(
        "SVt SLA-throughput improvement: {:.2}x (paper: 2.2x on the p99 SLA)",
        crossovers[1] / crossovers[0]
    );
}

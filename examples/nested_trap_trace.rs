//! An annotated walk through Algorithm 1: one nested VM trap, with the
//! paper's Table 1 attribution and the architectural events that occurred.
//!
//! Run with: `cargo run --example nested_trap_trace`

use svt::core::{nested_machine, SwitchMode};
use svt::hv::{GuestOp, MachineError, OpLoop};
use svt::sim::{CostPart, SimDuration};

fn main() -> Result<(), MachineError> {
    let mut m = nested_machine(SwitchMode::Baseline);

    // Warm up once (the nested bootstrap — vmptrld trap, vmcs01' writes,
    // vmlaunch emulation — is charged at machine construction).
    let mut warm = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut warm)?;
    m.clock.reset_attribution();
    m.tracer.enable();
    m.obs.spans.enable();

    println!("Executing one cpuid in L2 (Algorithm 1 of the paper):\n");
    let rip_before = m.vcpu2().rip;
    let mut prog = OpLoop::new(GuestOp::Cpuid, 1, 0, SimDuration::ZERO);
    m.run(&mut prog)?;

    println!("Step-by-step attribution (Table 1 parts):");
    let steps = [
        (CostPart::L2Guest, "0. L2 executes cpuid"),
        (
            CostPart::SwitchL2L0,
            "1. VM trap into L0 + final VM resume of L2",
        ),
        (
            CostPart::Transform,
            "2. vmcs02->vmcs12 and vmcs12->vmcs02 transformations",
        ),
        (
            CostPart::L0Handler,
            "3. L0 handler (route, inject into vmcs12, VMRESUME checks)",
        ),
        (CostPart::SwitchL0L1, "4. World switches L0<->L1"),
        (
            CostPart::L1Handler,
            "5. L1's cpuid handler (incl. its own trap to L0)",
        ),
    ];
    let mut total = SimDuration::ZERO;
    for (part, label) in steps {
        let t = m.clock.part_time(part);
        total += t;
        println!("   {label:<60} {t}");
    }
    println!("   {:<60} {}", "Total", total);

    println!("\nArchitectural events during the trap:");
    for (name, v) in m.clock.counters() {
        println!("   {name:<24} {v}");
    }

    println!("\nArchitectural trace (oldest first):");
    for (at, ev) in m.tracer.events() {
        println!("   [{at}] {ev:?}");
    }

    println!("\nTrap-lifecycle spans (exportable as Chrome trace JSON):");
    for s in m.obs.spans.spans() {
        println!(
            "   trap #{:<3} {:<10} [{} .. {}] {:<18} {}",
            s.trap_seq,
            format!("{}/{}", s.level.name(), s.cat),
            s.begin,
            s.end,
            s.name,
            s.duration()
        );
    }
    println!(
        "   ({} spans; svt::obs::chrome_trace(spans) renders them for ui.perfetto.dev)",
        m.obs.spans.len()
    );

    println!("\nState effects:");
    println!(
        "   L2 RIP advanced by the emulated instruction: {:#x} -> {:#x}",
        rip_before,
        m.vcpu2().rip
    );
    println!(
        "   L1's shadow vmcs12 holds the reflected exit reason: code {}",
        m.vmcs12().read(svt::vmx::VmcsField::ExitReason)
    );
    Ok(())
}

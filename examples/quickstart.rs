//! Quickstart: boot the nested stack under each switch engine and compare
//! the cost of one trapping instruction.
//!
//! Run with: `cargo run --example quickstart`

use svt::core::{nested_machine, SwitchMode};
use svt::hv::{GuestOp, MachineError, OpLoop};
use svt::sim::SimDuration;

fn main() -> Result<(), MachineError> {
    println!("One cpuid instruction in a nested VM (L2), per switch engine:\n");
    let mut baseline_us = 0.0;
    for mode in SwitchMode::ALL {
        // A machine with the paper's Table 4 configuration: L0 hosts the
        // L1 guest hypervisor, which hosts the L2 nested VM.
        let mut m = nested_machine(mode);

        // The measured guest program: a loop of cpuid instructions, each
        // of which architecturally traps and runs the full Algorithm 1
        // reflection chain.
        let mut prog = OpLoop::new(GuestOp::Cpuid, 100, 0, SimDuration::ZERO);
        let before = m.clock.snapshot();
        m.run(&mut prog)?;
        let elapsed = m.clock.since_snapshot(&before);

        let us = elapsed.busy_time().as_us() / 100.0;
        if mode == SwitchMode::Baseline {
            baseline_us = us;
        }
        println!(
            "  {:<10} {:>7.2} us/cpuid   ({} nested exits, {} vmreads, speedup {:.2}x)",
            mode.label(),
            us,
            elapsed.counter("l2_exit_chain"),
            elapsed.counter("vmread"),
            baseline_us / us,
        );
    }
    println!("\nPaper (Fig. 6): baseline 10.40us, SW SVt 1.23x, HW SVt 1.94x.");
    Ok(())
}

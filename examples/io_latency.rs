//! I/O latency demo (Fig. 7's latency rows): netperf-style request/response
//! and ioping-style disk accesses under each switch engine.
//!
//! Run with: `cargo run --release --example io_latency`

use svt::core::SwitchMode;
use svt::workloads::{disk_latency_us, net_rr_latency_us};

fn main() {
    println!("netperf TCP_RR (1-byte) and ioping (512B randrd), nested VM:\n");
    println!(
        "{:<10} {:>16} {:>18}",
        "Engine", "net RR [us]", "disk randrd [us]"
    );
    let mut base = (0.0, 0.0);
    for mode in SwitchMode::ALL {
        let rr = net_rr_latency_us(mode, 60);
        let disk = disk_latency_us(mode, false, 60);
        if mode == SwitchMode::Baseline {
            base = (rr, disk);
        }
        println!(
            "{:<10} {:>9.1} ({:.2}x) {:>10.1} ({:.2}x)",
            mode.label(),
            rr,
            base.0 / rr,
            disk,
            base.1 / disk
        );
    }
    println!("\nPaper (Fig. 7): net 163us, SW 1.10x, HW 2.38x; disk 126us, SW 1.30x, HW 2.18x.");
}

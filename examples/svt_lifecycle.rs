//! The § 4 hardware walkthrough: configuring SVt contexts, virtualized
//! context ids, and cross-context register access through the shared
//! physical register file.
//!
//! Run with: `cargo run --example svt_lifecycle`

use svt::cpu::{CtxId, CtxtLevel, Gpr, SmtCore};
use svt::vmx::VmcsField;

fn main() {
    // A core with three hardware contexts: L0 on ctx0, L1 on ctx1, L2 on
    // ctx2 — the assignment of the paper's running example.
    let mut core = SmtCore::new(3);
    println!(
        "Core with {} SVt contexts; ctx0 active.",
        core.num_contexts()
    );

    // --- Configuring L1 (paper Fig. 4, step A/B) -----------------------
    // L0 programs vmcs01's SVt fields and the VMPTRLD caches them into the
    // per-core micro-registers.
    let mut vmcs01 = svt::vmx::Vmcs::new(
        svt::vmx::VmcsRole::Host { guest_level: 1 },
        svt::mem::Gpa(0x1000),
    );
    vmcs01.set_svt_ctx(VmcsField::SvtVisor, Some(0));
    vmcs01.set_svt_ctx(VmcsField::SvtVm, Some(1));
    vmcs01.set_svt_ctx(VmcsField::SvtNested, Some(2));
    let micro = core.micro_mut();
    micro.visor = Some(CtxId(0));
    micro.vm = Some(CtxId(1));
    micro.nested = Some(CtxId(2));
    println!("vmcs01 SVt fields: visor=ctx0, vm=ctx1, nested=ctx2 (cached in u-registers).");

    // --- Cross-context register access (first operation of Fig. 3) -----
    // L0 (is_vm == 0) loads L1's initial state with ctxtst, lvl == Guest.
    core.micro_mut().is_vm = false;
    for (i, r) in Gpr::ALL.iter().enumerate() {
        core.ctxtst(CtxtLevel::Guest, *r, 0x1000 + i as u64)
            .expect("ctx1 configured");
    }
    println!(
        "L0 loaded L1's registers via ctxtst: ctx1.RAX = {:#x}",
        core.read_gpr(CtxId(1), Gpr::Rax)
    );

    // --- VM resume: thread stall/resume, not a context switch ----------
    core.switch_to(CtxId(1)).expect("ctx1 exists");
    core.micro_mut().is_vm = true;
    println!(
        "VM resume: fetch switched to {} ({} context running).",
        core.current(),
        core.running_contexts()
    );

    // --- Virtualized context ids (the paper's key indirection) ---------
    // L1 thinks its guest runs in "context 1", but lvl == Guest from a VM
    // (is_vm == 1) resolves through SVt_nested — the physical ctx2.
    core.write_gpr(CtxId(2), Gpr::Rbx, 0xbeef);
    let v = core
        .ctxtld(CtxtLevel::Guest, Gpr::Rbx)
        .expect("virtualized target");
    println!("L1's ctxtld(lvl=1, RBX) transparently read physical ctx2: {v:#x}");

    // Attempting to reach deeper than configured faults into the
    // hypervisor, which can emulate deeper hierarchies.
    let fault = core.ctxtld(CtxtLevel::Nested, Gpr::Rbx).unwrap_err();
    println!("L1's ctxtld(lvl=2) faults for emulation: {fault}");

    // --- Trap back: stall ctx1, resume ctx0 ----------------------------
    core.switch_to(CtxId(0)).expect("ctx0 exists");
    core.micro_mut().is_vm = false;
    println!(
        "VM trap: fetch back on {}; L1's registers still live in its context: ctx1.RAX = {:#x}",
        core.current(),
        core.read_gpr(CtxId(1), Gpr::Rax)
    );
}
